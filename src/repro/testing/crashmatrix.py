"""The crash matrix: every fault point x every operation, crashed and verified.

For each combination of a registered storage fault point (see
:mod:`repro.storage.faults`), a fault kind meaningful at that point, and an
engine operation (``ingest``, ``flush``, ``compaction``, ``range_delete``,
``restart``), one isolated engine is seeded with a known workload, the
fault is armed, the operation runs until it either completes or "crashes"
(the injector raises at exactly the interrupted byte), the process's state
is abandoned exactly as a power cut would leave it, and the store is
reopened from disk.  Recovery must then satisfy the durability contract:

* **zero acknowledged-write loss** -- every put/delete that returned before
  the crash is observable after recovery;
* **no resurrection** -- no acknowledged delete's key comes back, and no
  key ever reads a value older than its last acknowledged write;
* **tombstone ages preserved** -- every pending tombstone the recovered
  persistence tracker reports was born at the tick the delete was issued
  (never re-aged to the reopen tick), and the FADE scheduler's deadline
  heap is rebuilt with every on-disk tombstone-bearing file tracked and
  its earliest deadline within ``D_th`` of the oldest tombstone;
* **clean structure** -- ``verify_invariants`` passes and the store doctor
  finds the directory healthy both before and after recovery.

The operation that was *in flight* when the crash hit is the only
uncertainty allowed: its key(s) may show either the pre-op or the post-op
state (both are legal outcomes of a crash mid-operation), but never
anything else.

Per-kind contracts refine the above: ``crash``/``torn`` faults follow the
full recovery contract; ``io_error``/``enospc`` are armed transiently
(fewer occurrences than the retry budget) and the operation must complete
as if nothing happened; ``fsync_drop`` must have no observable effect (the
engine may not depend on an fsync for logical correctness); ``bitflip``
must be *detected* -- by the strict reopen or by ``doctor scrub`` -- and
never silently served.  ``bitflip`` runs only at the SSTable and manifest
write points: a flipped byte in a WAL tail is indistinguishable from a
torn append by design (replay treats both as a tail to discard), which the
unit tests cover directly.

Determinism: each combo derives its injector seed from the matrix seed and
the combo index, so a failing combo replays bit-identically.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.config import CompactionStyle, acheron_config
from repro.core.engine import AcheronEngine
from repro.errors import CorruptionError, InvariantViolationError, StorageError
from repro.storage import faults as fp
from repro.storage.faults import FaultInjector, SimulatedCrash, kinds_for_point
from repro.tools.doctor import diagnose_store, scrub_store

#: Exceptions that count as "the process died here" for the matrix.
CRASH_EXCEPTIONS = (SimulatedCrash, StorageError, OSError)

#: ``concurrent`` is the multi-worker row: the engine opens with two
#: background workers, so flush/compaction fault points fire on *worker
#: threads* and must surface as a background error on the next
#: acknowledged operation (the RocksDB ``bg_error`` discipline) -- then
#: recover exactly like a serial crash.  ``shard_fanout`` and
#: ``shard_split`` are the sharded rows: a two-shard store crashes mid
#: cross-shard secondary-delete fan-out (recovery must make it
#: all-or-nothing via the root-manifest intent) or mid shard split
#: (recovery must resume the staged copy/purge protocol with zero loss).
#: ``lazy_range_delete`` is the fence row: the same delete window as
#: ``range_delete`` but issued with ``method="lazy"`` (one WAL append, no
#: file rewrites), then a flush (fence-filtered build) and a full
#: compaction (fence resolution + retirement) so every stage of the
#: fence lifecycle crosses the armed fault point.
#: ``governor_resize`` is the memory-governor row: the write buffer and
#: block cache are forcibly retargeted (both directions, across the
#: cache's internal shard threshold) with ingest and flushes in between,
#: so every fault point fires adjacent to a live resize.  Budgets are
#: advisory and never persisted -- recovery must come back at the
#: *config* defaults, which ``_verify_budget_reset`` asserts.
#: ``policy_switch`` is the compaction-tuner row: the engine opens under
#: **tiering**, the seed leaves multi-run levels, and the scenario flips
#: the live tree to **leveling** -- a manifest write (the new policy is
#: durable config state) plus the ``LEVEL_COLLAPSE`` drain compactions --
#: with ingest and flushes bracketing it so every fault point fires
#: adjacent to the switch.  Unlike memory budgets the policy *is*
#: persisted: recovery must land on exactly the pre-switch or the
#: post-switch policy (never anything else) with ``D_th`` intact, which
#: ``_verify_policy_recovery`` asserts via a config-free reopen.
#: New rows are appended last so earlier rows keep their combo indices
#: (and therefore their derived seeds).
OPERATIONS = (
    "ingest", "flush", "compaction", "range_delete", "restart", "concurrent",
    "shard_fanout", "shard_split", "lazy_range_delete", "governor_resize",
    "policy_switch",
)

#: Worker count for the ``concurrent`` operation's engine.
CONCURRENT_WORKERS = 2

#: Points where a bit flip lands in a file that checksums must protect.
BITFLIP_POINTS = (fp.SSTABLE_WRITE, fp.MANIFEST_WRITE)

#: The matrix engine: tiny layout so a ~200-op workload spans several
#: levels, ``wal_sync=True`` so every fsync-class fault point is reached.
D_TH = 5_000


def _matrix_config():
    # bloom_salted exercises the keyed-filter path (salt generation,
    # manifest persistence, rebuild-under-salt on recovery) through every
    # crash point in the matrix; the restart row additionally asserts the
    # salt round-trips bit-exact.
    return acheron_config(
        delete_persistence_threshold=D_TH,
        pages_per_tile=2,
        memtable_entries=32,
        entries_per_page=8,
        size_ratio=3,
        bloom_salted=True,
    )


def _open_engine(
    directory: str,
    faults: FaultInjector | None = None,
    degraded_ok: bool = False,
    workers: int | None = None,
    policy: CompactionStyle | None = None,
    recorded: bool = False,
) -> AcheronEngine:
    # ``policy`` overrides the matrix config's compaction policy (the
    # policy_switch row seeds under tiering); ``recorded`` passes no
    # config at all, so the open recovers under whatever config the
    # manifest recorded -- required when a live policy switch may or may
    # not have committed before the crash, since an explicit config
    # would override (and on the next manifest write, stomp) the
    # recorded policy.
    config = None if recorded else _matrix_config()
    if policy is not None:
        config = _matrix_config().with_updates(policy=policy)
    return AcheronEngine(
        config,
        directory=directory,
        wal_sync=True,
        faults=faults,
        degraded_ok=degraded_ok,
        workers=workers,
    )


def _key(i: int) -> str:
    return f"k{i:04d}"


def _value(i: int, version: int) -> str:
    # Unique per (key, version): resurrection of any older value is
    # distinguishable from the acknowledged one.
    return f"{_key(i)}:v{version}"


# ---------------------------------------------------------------------------
# the acknowledged-state model
# ---------------------------------------------------------------------------
class AckModel:
    """What the engine has acknowledged, from the client's point of view.

    ``live`` maps key -> ``(value, delete_key_tick)`` for acknowledged
    puts; ``deleted`` holds keys whose last acknowledged operation was a
    point delete; ``issued_delete_ticks`` records the write tick of every
    tombstone ever issued (acknowledged *or* in flight at the crash --
    a crashed delete's tombstone may legitimately be durable).  The
    single in-flight operation at crash time contributes ``uncertain``
    (key -> tuple of acceptable observed values) or ``range_uncertain``
    (a delete-key window whose members may be present or absent).
    """

    def __init__(self) -> None:
        self.live: dict[str, tuple[str, int]] = {}
        self.deleted: set[str] = set()
        self.issued_delete_ticks: set[int] = set()
        self.uncertain: dict[str, tuple[Any, ...]] = {}
        self.range_uncertain: tuple[int, int] | None = None

    def view(self, key: str) -> str | None:
        """The committed value of ``key`` (None = absent/deleted)."""
        state = self.live.get(key)
        return state[0] if state is not None else None

    def commit_put(self, key: str, value: str, tick: int) -> None:
        self.live[key] = (value, tick)
        self.deleted.discard(key)
        self.uncertain.pop(key, None)

    def commit_delete(self, key: str, tick: int) -> None:
        self.live.pop(key, None)
        self.deleted.add(key)
        self.uncertain.pop(key, None)

    def commit_range_delete(self, lo: int, hi: int) -> None:
        for key in [k for k, (_, dk) in self.live.items() if lo <= dk <= hi]:
            del self.live[key]
            # A secondary delete drops values physically; unlike a point
            # delete it leaves no tombstone, so the key is simply absent.
            self.deleted.add(key)

    def acceptable(self, key: str) -> tuple[Any, ...]:
        """Every value a recovered ``get(key)`` may legally return."""
        if key in self.uncertain:
            return self.uncertain[key]
        state = self.live.get(key)
        if state is not None:
            value, dk = state
            if self.range_uncertain is not None:
                lo, hi = self.range_uncertain
                if lo <= dk <= hi:
                    return (value, None)
            return (value,)
        return (None,)


class Driver:
    """Issues operations and commits them to the model only when acked."""

    def __init__(self, engine: AcheronEngine, model: AckModel) -> None:
        self.engine = engine
        self.model = model

    def put(self, key: str, value: str) -> None:
        tick = self.engine.clock.now()
        prev = self.model.view(key)
        try:
            self.engine.put(key, value)
        except BaseException:
            self.model.uncertain[key] = (value, prev)
            raise
        self.model.commit_put(key, value, tick)

    def delete(self, key: str) -> None:
        tick = self.engine.clock.now()
        prev = self.model.view(key)
        # The tombstone may become durable even if the op never returns.
        self.model.issued_delete_ticks.add(tick)
        try:
            self.engine.delete(key)
        except BaseException:
            self.model.uncertain[key] = (None, prev)
            raise
        self.model.commit_delete(key, tick)

    def delete_range(self, lo: int, hi: int, method: str = "auto") -> None:
        # A lazy fence is atomic (one WAL append), so per-key uncertainty
        # is a conservative superset of its crash states; eager rewrites
        # genuinely leave per-key partial outcomes.  One model serves both.
        try:
            self.engine.delete_range(lo, hi, method=method)
        except BaseException:
            self.model.range_uncertain = (lo, hi)
            raise
        self.model.commit_range_delete(lo, hi)


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------
@dataclass
class _Ctx:
    directory: str
    injector: FaultInjector
    model: AckModel
    engine: AcheronEngine
    driver: Driver


def _seed_phase(ctx: _Ctx) -> None:
    """Build known state before the fault is armed (injector quiescent):
    several flushed runs, tombstones both on disk and buffered, a few
    overwrites superseding earlier deletes."""
    d = ctx.driver
    for i in range(96):
        d.put(_key(i), _value(i, 0))
    for i in range(0, 96, 6):
        d.delete(_key(i))
    ctx.engine.flush()  # tombstones reach disk; FADE tracks their files
    for i in range(96, 120):
        d.put(_key(i), _value(i, 1))
    for i in range(3, 48, 9):
        d.delete(_key(i))
    for i in range(1, 96, 7):
        d.put(_key(i), _value(i, 2))


def _scenario_ingest(ctx: _Ctx) -> None:
    for i in range(48):
        if i % 4 == 3:
            ctx.driver.delete(_key(50 + i))
        else:
            ctx.driver.put(_key(200 + i), _value(200 + i, 0))


def _scenario_flush(ctx: _Ctx) -> None:
    for i in range(4):
        ctx.driver.put(_key(300 + i), _value(300 + i, 0))
    ctx.driver.delete(_key(2))
    ctx.driver.delete(_key(301))
    ctx.engine.flush()


def _scenario_compaction(ctx: _Ctx) -> None:
    ctx.engine.compact_all()


def _scenario_range_delete(ctx: _Ctx) -> None:
    # The window spans both flushed runs and buffered entries, so the
    # KiWi page drops *and* the WAL-rewrite path are both exercised.
    ctx.driver.delete_range(8, 120)


def _scenario_lazy_range_delete(ctx: _Ctx) -> None:
    # Same window as the eager row, issued as an O(1) fence append; then
    # a flush (fence-filtered memtable build, retirement audit) and a
    # full compaction (fence-shadow resolution, fence retirement, manifest
    # republish) so the whole fence lifecycle runs under the armed fault.
    ctx.driver.delete_range(8, 120, method="lazy")
    ctx.engine.flush()
    ctx.engine.compact_all()


def _scenario_restart(ctx: _Ctx) -> None:
    salt_before = ctx.engine.tree.bloom_salt
    ctx.driver.put(_key(400), _value(400, 0))
    ctx.driver.put(_key(401), _value(401, 0))
    ctx.engine.close()
    # Reopen with the fault still armed: shutdown already ran under it,
    # now recovery itself (temp sweep, GC, replay) must survive it too.
    ctx.engine = _open_engine(ctx.directory, faults=ctx.injector)
    # The bloom salt is a persisted secret: a reopen that survived the
    # fault must probe recovered filters through the *original* keyed
    # digest, not a freshly generated one.
    salt_after = ctx.engine.tree.bloom_salt
    if salt_after != salt_before:
        raise AssertionError(
            "bloom salt did not round-trip across restart: "
            f"{salt_before!r} -> {salt_after!r}"
        )


def _scenario_concurrent(ctx: _Ctx) -> None:
    # The engine for this row runs with background workers (see
    # run_combo): every write below is acked into the WAL on the calling
    # thread, while flushes and compactions execute on worker threads.
    # An armed fault therefore fires *inside a worker*; the controller
    # must record it and re-raise it on the next acknowledged operation
    # or at the closing barrier, never swallow it.
    for i in range(160):
        if i % 5 == 4:
            ctx.driver.delete(_key(i % 120))
        else:
            ctx.driver.put(_key(500 + i), _value(500 + i, 0))
    ctx.engine.flush()  # barrier: surfaces any pending background error


def _scenario_governor_resize(ctx: _Ctx) -> None:
    # A governor decision is two live-resize seams -- ``BlockCache.resize``
    # and the memtable soft limit -- followed by ordinary traffic.  The
    # resizes themselves touch no disk, so the armed fault fires in the
    # ingest/flush that brackets them; wherever the crash lands, the
    # retargets must neither corrupt in-flight state nor persist.
    tree = ctx.engine.tree
    tree.cache.resize(600)  # grow across the cache's internal shard threshold
    tree.set_memtable_budget(8)  # shrink: the next fill check flushes early
    for i in range(24):
        ctx.driver.put(_key(600 + i), _value(600 + i, 0))
    ctx.driver.delete(_key(4))
    ctx.engine.flush()
    for i in range(1, 96, 5):
        ctx.engine.get(_key(i))  # warm the cache so the shrink migrates pages
    tree.cache.resize(2)  # shrink back to a single shard, evicting down
    tree.set_memtable_budget(64)  # grow past the config default
    for i in range(24, 40):
        ctx.driver.put(_key(600 + i), _value(600 + i, 0))
    ctx.engine.flush()


def _scenario_policy_switch(ctx: _Ctx) -> None:
    # The engine for this row opened under tiering (see run_combo), so
    # the seed phase left multi-run levels behind.  Deepen the layout a
    # little more, then flip the live tree to leveling: the switch is a
    # manifest write (policy is durable config state) immediately
    # followed by the LEVEL_COLLAPSE drain compactions that consolidate
    # every multi-run level -- both under the armed fault.  Traffic and
    # a flush afterwards catch the fault points a quiesced switch
    # would miss.
    for i in range(24):
        ctx.driver.put(_key(700 + i), _value(700 + i, 0))
    ctx.driver.delete(_key(7))
    ctx.engine.flush()
    ctx.engine.set_policy(CompactionStyle.LEVELING)
    for i in range(24, 40):
        ctx.driver.put(_key(700 + i), _value(700 + i, 0))
    ctx.driver.delete(_key(11))
    ctx.engine.flush()


_SCENARIOS: dict[str, Callable[[_Ctx], None]] = {
    "ingest": _scenario_ingest,
    "flush": _scenario_flush,
    "compaction": _scenario_compaction,
    "range_delete": _scenario_range_delete,
    "restart": _scenario_restart,
    "concurrent": _scenario_concurrent,
    "lazy_range_delete": _scenario_lazy_range_delete,
    "governor_resize": _scenario_governor_resize,
    "policy_switch": _scenario_policy_switch,
}


# ---------------------------------------------------------------------------
# sharded rows: fan-out atomicity and split recovery under faults
# ---------------------------------------------------------------------------
#: The two-shard boundary for the sharded rows: the seed keys k0000..k0119
#: straddle it, so both shards hold data, tombstones, and delete keys.
SHARD_BOUNDARY = _key(60)


def _open_sharded(directory: str, faults: FaultInjector | None = None):
    """The matrix's sharded engine: two shards, wal_sync, serial trees
    (faults force workers=1 per shard, keeping fault ordering exact)."""
    from repro.shard import ShardedEngine, is_sharded_root

    existing = is_sharded_root(directory)
    return ShardedEngine(
        None if existing else _matrix_config(),
        directory=directory,
        boundaries=None if existing else [SHARD_BOUNDARY],
        wal_sync=True,
        faults=faults,
    )


class _ShardDriver(Driver):
    """The ack model against a sharded engine: ticks are *per shard* --
    an entry's write time (and default delete key) comes from the clock
    of the shard that owns its key, not the global maximum."""

    def put(self, key: str, value: str) -> None:
        tick = self.engine.shard_for(key).clock.now()
        prev = self.model.view(key)
        try:
            self.engine.put(key, value)
        except BaseException:
            self.model.uncertain[key] = (value, prev)
            raise
        self.model.commit_put(key, value, tick)

    def delete(self, key: str) -> None:
        tick = self.engine.shard_for(key).clock.now()
        prev = self.model.view(key)
        self.model.issued_delete_ticks.add(tick)
        try:
            self.engine.delete(key)
        except BaseException:
            self.model.uncertain[key] = (None, prev)
            raise
        self.model.commit_delete(key, tick)


def _abandon_sharded(engine) -> None:
    """Process death for a sharded engine: abandon every shard tree."""
    for shard in engine.shards:
        _abandon(shard)
    engine._closed = True  # noqa: SLF001 - defensive: the object is dead


def _run_shard_combo(
    result: ComboResult, operation: str, point: str, kind: str, seed: int, workdir: str
) -> None:
    """One sharded combo: seed a two-shard store, arm the fault, crash the
    cross-shard operation, reopen, and verify the shard-global contract.

    Beyond the single-tree contract, recovery must make the fan-out
    **all-or-nothing across shards** (the in-flight secondary delete's
    victims are all gone or all present -- never a half-applied split
    brain) and a split must preserve every acknowledged write and every
    shard's ``D_th`` metadata while the staged copy/purge protocol
    resumes.
    """
    injector = FaultInjector(seed=seed)
    model = AckModel()
    engine = _open_sharded(workdir, faults=injector)
    driver = _ShardDriver(engine, model)
    _seed_shards(driver, engine)

    arm_kwargs: dict[str, int] = {}
    if kind in (fp.IO_ERROR, fp.ENOSPC):
        arm_kwargs["times"] = min(2, fp.RETRY_ATTEMPTS - 1)
    injector.arm(point, kind, **arm_kwargs)

    try:
        if operation == "shard_fanout":
            # The window covers first-version delete keys on *both* shards
            # (shard-0 ticks 8..40 and shard-1 ticks 8..35) but no
            # overwrite's tick: a secondary delete drops value entries
            # physically, so a window over an overwrite would -- by the
            # documented KiWi semantics -- resurface the out-of-window
            # older version beneath it, which the ack model does not track.
            driver.delete_range(8, 40)
        else:
            engine.split_shard(0)
    except CRASH_EXCEPTIONS:
        result.crashed = True
    if not result.crashed:
        if kind == fp.BITFLIP and injector.fired_count(point):
            _abandon_sharded(engine)
        else:
            try:
                engine.close()
            except CRASH_EXCEPTIONS:
                result.crashed = True
    if result.crashed:
        _abandon_sharded(engine)
    result.triggered = injector.fired_count(point) > 0

    if kind in (fp.IO_ERROR, fp.ENOSPC) and result.crashed:
        result.errors.append(
            "transient fault escaped the bounded retry (operation should have completed)"
        )
    if kind == fp.FSYNC_DROP and result.crashed:
        result.errors.append("a dropped fsync must have no observable effect")

    if kind == fp.BITFLIP and result.triggered:
        result.errors.extend(_verify_shard_bitflip(workdir, model))
    else:
        result.errors.extend(_verify_shard_recovery(workdir, model))


def _seed_shards(driver: _ShardDriver, engine) -> None:
    """The classic seed workload, straddling the shard boundary."""
    for i in range(96):
        driver.put(_key(i), _value(i, 0))
    for i in range(0, 96, 6):
        driver.delete(_key(i))
    engine.flush()
    for i in range(96, 120):
        driver.put(_key(i), _value(i, 1))
    for i in range(3, 48, 9):
        driver.delete(_key(i))
    for i in range(1, 96, 7):
        driver.put(_key(i), _value(i, 2))


def _verify_fanout_atomicity(engine, model: AckModel, errors: list[str]) -> None:
    """The in-flight fan-out's victims must be all present or all absent."""
    assert model.range_uncertain is not None
    lo, hi = model.range_uncertain
    members = {
        key: value
        for key, (value, dk) in model.live.items()
        if lo <= dk <= hi and key not in model.uncertain
    }
    observed = {key: engine.get(key) for key in sorted(members)}
    present = [key for key, value in observed.items() if value is not None]
    absent = [key for key, value in observed.items() if value is None]
    if present and absent:
        errors.append(
            f"half-applied secondary-delete fan-out after recovery: "
            f"{len(absent)} in-window keys gone but {len(present)} still "
            f"present (e.g. {present[:3]})"
        )


def _verify_shard_recovery(directory: str, model: AckModel) -> list[str]:
    """Reopen the crashed sharded store cleanly; full contract + atomicity."""
    errors: list[str] = []
    report = diagnose_store(directory)
    if not report.healthy:
        errors.append(f"crashed store fails diagnosis before recovery: {report.errors}")
    try:
        engine = _open_sharded(directory)
    except Exception as exc:  # noqa: BLE001 - any failure to reopen is a finding
        errors.append(f"sharded recovery open failed: {type(exc).__name__}: {exc}")
        return errors
    try:
        if engine.degraded:
            errors.append("sharded recovery degraded unexpectedly")
        _verify_data(engine, model, errors)
        if model.range_uncertain is not None:
            _verify_fanout_atomicity(engine, model, errors)
        for index, shard in enumerate(engine.shards):
            before = len(errors)
            _verify_tombstone_metadata(shard, model, errors)
            for slot in range(before, len(errors)):
                errors[slot] = f"shard {index}: {errors[slot]}"
        try:
            engine.verify_invariants()
        except InvariantViolationError as exc:
            errors.append(f"recovered sharded store fails invariants: {exc}")
    finally:
        try:
            engine.close()
        except Exception as exc:  # noqa: BLE001
            errors.append(f"close after recovery failed: {type(exc).__name__}: {exc}")
    for name, check in (("diagnose", diagnose_store), ("scrub", scrub_store)):
        post = check(directory)
        if not post.healthy:
            errors.append(f"store fails {name} after recovery: {post.errors}")
    return errors


def _verify_shard_bitflip(directory: str, model: AckModel) -> list[str]:
    """A flipped bit anywhere -- a shard's files or the root manifest --
    must be detected by the strict reopen or the (shard-iterating) scrub,
    never silently served."""
    errors: list[str] = []
    scrub = scrub_store(directory)
    try:
        engine = _open_sharded(directory)
    except CorruptionError:
        if scrub.healthy:
            errors.append("strict open detected corruption but `doctor scrub` did not")
        return errors
    # Strict open succeeded: the flipped bytes are no longer referenced.
    # Nothing corrupt may be served -- the full contract applies.
    try:
        _verify_data(engine, model, errors)
        if model.range_uncertain is not None:
            _verify_fanout_atomicity(engine, model, errors)
    finally:
        engine.close()
    post = scrub_store(directory)
    if not post.healthy:
        errors.append(
            f"store serves reads yet fails scrub after recovery: {post.errors}"
        )
    return errors


# ---------------------------------------------------------------------------
# combo enumeration
# ---------------------------------------------------------------------------
def iter_combos(quick: bool = False) -> Iterator[tuple[str, str, str]]:
    """Yield every ``(operation, fault_point, kind)`` the matrix covers.

    ``quick`` drops the ``enospc`` and ``fsync_drop`` kinds (each is
    behaviourally a twin of a retained kind: ``enospc`` of ``io_error``,
    ``fsync_drop`` of a no-op) -- the CI configuration.
    """
    for operation in OPERATIONS:
        for point in fp.FAULT_POINTS:
            for kind in kinds_for_point(point):
                if kind == fp.BITFLIP and point not in BITFLIP_POINTS:
                    continue
                if quick and kind in (fp.ENOSPC, fp.FSYNC_DROP):
                    continue
                yield operation, point, kind


# ---------------------------------------------------------------------------
# running one combo
# ---------------------------------------------------------------------------
@dataclass
class ComboResult:
    operation: str
    point: str
    kind: str
    #: The armed fault actually acted (fired/mangled) at least once.
    triggered: bool = False
    #: The scenario (or shutdown) raised a crash-class exception.
    crashed: bool = False
    errors: list[str] = field(default_factory=list)
    #: Kept on failure for replay/debugging; None when cleaned up.
    directory: str | None = None

    @property
    def ok(self) -> bool:
        return not self.errors

    def label(self) -> str:
        return f"{self.operation} x {self.point} x {self.kind}"


def _abandon(engine: AcheronEngine) -> None:
    """Simulate process death: drop OS handles without flushing anything."""
    tree = engine.tree
    wp = tree.write_path
    if wp is not None:
        # Stop the background workers *without* draining or surfacing
        # errors -- a power cut does not wait for compactions to finish.
        try:
            wp.abort()
        except Exception:
            pass
    wal = getattr(tree, "_wal", None)
    if wal is not None:
        try:
            wal._fh.close()  # noqa: SLF001 - raw handle close, no flush logic
        except Exception:
            pass
    tree._closed = True  # noqa: SLF001 - defensive: the object is dead


def run_combo(operation: str, point: str, kind: str, seed: int, base_dir: str) -> ComboResult:
    result = ComboResult(operation=operation, point=point, kind=kind)
    workdir = tempfile.mkdtemp(prefix=f"{operation}-{kind}-", dir=base_dir)
    result.directory = workdir
    if operation.startswith("shard_"):
        _run_shard_combo(result, operation, point, kind, seed, workdir)
        if result.ok:
            shutil.rmtree(workdir, ignore_errors=True)
            result.directory = None
        return result
    injector = FaultInjector(seed=seed)
    model = AckModel()
    engine = _open_engine(
        workdir,
        faults=injector,
        workers=CONCURRENT_WORKERS if operation == "concurrent" else None,
        policy=CompactionStyle.TIERING if operation == "policy_switch" else None,
    )
    ctx = _Ctx(
        directory=workdir, injector=injector, model=model, engine=engine,
        driver=Driver(engine, model),
    )
    _seed_phase(ctx)

    arm_kwargs: dict[str, int] = {}
    if kind in (fp.IO_ERROR, fp.ENOSPC):
        # Transient: fewer occurrences than the retry budget, so the
        # operation must ride it out and complete.
        arm_kwargs["times"] = min(2, fp.RETRY_ATTEMPTS - 1)
    injector.arm(point, kind, **arm_kwargs)

    try:
        _SCENARIOS[operation](ctx)
    except CRASH_EXCEPTIONS:
        result.crashed = True
    if not result.crashed:
        if kind == fp.BITFLIP and injector.fired_count(point):
            # Die here rather than close cleanly: a clean shutdown could
            # rewrite the corrupted file and hide the flip from the scrub.
            _abandon(ctx.engine)
        else:
            try:
                ctx.engine.close()
            except CRASH_EXCEPTIONS:
                result.crashed = True
    if result.crashed:
        _abandon(ctx.engine)
    result.triggered = injector.fired_count(point) > 0

    if kind in (fp.IO_ERROR, fp.ENOSPC) and result.crashed:
        result.errors.append(
            "transient fault escaped the bounded retry (operation should have completed)"
        )
    if kind == fp.FSYNC_DROP and result.crashed:
        result.errors.append("a dropped fsync must have no observable effect")

    if kind == fp.BITFLIP and result.triggered:
        result.errors.extend(_verify_bitflip(workdir, model))
    else:
        # The policy_switch row recovers under the *recorded* config: the
        # crash raced a durable policy change, so forcing the matrix
        # config (leveling) would override -- and on the next manifest
        # write, stomp -- whichever policy actually committed.
        result.errors.extend(
            _verify_recovery(
                workdir, model, recorded=(operation == "policy_switch")
            )
        )
        if operation == "governor_resize":
            result.errors.extend(_verify_budget_reset(workdir))
        if operation == "policy_switch":
            result.errors.extend(_verify_policy_recovery(workdir))

    if result.ok:
        shutil.rmtree(workdir, ignore_errors=True)
        result.directory = None
    return result


# ---------------------------------------------------------------------------
# verification
# ---------------------------------------------------------------------------
def _verify_data(engine: AcheronEngine, model: AckModel, errors: list[str]) -> None:
    for key in sorted(model.live):
        observed = engine.get(key)
        allowed = model.acceptable(key)
        if observed not in allowed:
            errors.append(
                f"acknowledged write lost or wrong: get({key!r}) = {observed!r}, "
                f"expected one of {allowed!r}"
            )
    for key in sorted(model.deleted):
        if key in model.uncertain:
            observed = engine.get(key)
            if observed not in model.uncertain[key]:
                errors.append(
                    f"in-flight op on deleted key {key!r} recovered to {observed!r}, "
                    f"expected one of {model.uncertain[key]!r}"
                )
        else:
            observed = engine.get(key)
            if observed is not None:
                errors.append(f"deleted key {key!r} resurrected as {observed!r}")
    for key, allowed in model.uncertain.items():
        if key not in model.live and key not in model.deleted:
            observed = engine.get(key)
            if observed not in allowed:
                errors.append(
                    f"in-flight key {key!r} recovered to {observed!r}, "
                    f"expected one of {allowed!r}"
                )


def _verify_tombstone_metadata(
    engine: AcheronEngine, model: AckModel, errors: list[str]
) -> None:
    tracker = engine.tracker
    assert tracker is not None
    for key, seqno, born in tracker.pending_items():
        if born not in model.issued_delete_ticks:
            errors.append(
                f"pending tombstone ({key!r}, seqno {seqno}) reports birth tick "
                f"{born}, which is not a tick any delete was issued at -- "
                "its age was not preserved across the restart"
            )
    tree = engine.tree
    tomb_files = [
        file
        for level in tree.iter_levels()
        for run in level.runs
        for file in run.files
        if file.oldest_tombstone_time is not None
    ]
    fade = tree.fade
    if fade is not None and tomb_files:
        if fade.tracked_file_count() != len(tomb_files):
            errors.append(
                f"FADE tracks {fade.tracked_file_count()} file(s) but "
                f"{len(tomb_files)} on-disk file(s) carry tombstones"
            )
        deadline = fade.next_deadline()
        bound = min(f.oldest_tombstone_time for f in tomb_files) + D_TH
        if deadline is None or deadline > bound:
            errors.append(
                f"FADE next deadline {deadline} exceeds D_th bound {bound} "
                "after recovery (deadline heap not rebuilt correctly)"
            )


def _verify_budget_reset(directory: str) -> list[str]:
    """Memory budgets are advisory, never persisted: however the governor
    (here, the scenario standing in for it) had retargeted the write
    buffer and cache before the crash, a recovered tree must come back at
    the *config* sizes."""
    errors: list[str] = []
    config = _matrix_config()
    engine = _open_engine(directory)
    try:
        tree = engine.tree
        if tree.memtable_budget != config.memtable_entries:
            errors.append(
                f"recovered memtable budget {tree.memtable_budget} != config "
                f"default {config.memtable_entries} (a live retarget persisted)"
            )
        if tree.memtable.capacity != config.memtable_entries:
            errors.append(
                f"recovered memtable capacity {tree.memtable.capacity} != config "
                f"default {config.memtable_entries} (a live retarget persisted)"
            )
        if tree.cache.capacity != config.cache_pages:
            errors.append(
                f"recovered cache capacity {tree.cache.capacity} != config "
                f"default {config.cache_pages} (a live resize persisted)"
            )
    finally:
        engine.close()
    return errors


def _verify_policy_recovery(directory: str) -> list[str]:
    """The compaction policy is durable config state: a crash racing a
    live tiering->leveling switch must recover to exactly one of the two
    (the manifest write is atomic -- whichever version is referenced
    wins), never a third value, and the unrelated config -- ``D_th``
    above all -- must ride along untouched."""
    errors: list[str] = []
    engine = _open_engine(directory, recorded=True)
    try:
        policy = engine.tree.config.policy
        if policy not in (CompactionStyle.TIERING, CompactionStyle.LEVELING):
            errors.append(
                f"recovered policy {policy!r} is neither the pre-switch "
                "tiering nor the post-switch leveling"
            )
        recovered_dth = engine.tree.config.delete_persistence_threshold
        if recovered_dth != D_TH:
            errors.append(
                f"recovered D_th {recovered_dth} != {D_TH}: the policy "
                "switch rewrote unrelated config"
            )
    finally:
        engine.close()
    return errors


def _verify_recovery(
    directory: str, model: AckModel, recorded: bool = False
) -> list[str]:
    """Reopen the crashed store cleanly and check the full contract."""
    errors: list[str] = []
    report = diagnose_store(directory)
    if not report.healthy:
        errors.append(f"crashed store fails diagnosis before recovery: {report.errors}")
    try:
        engine = _open_engine(directory, recorded=recorded)
    except Exception as exc:  # noqa: BLE001 - any failure to reopen is a finding
        errors.append(f"recovery open failed: {type(exc).__name__}: {exc}")
        return errors
    try:
        if engine.degraded:
            errors.append(f"recovery degraded unexpectedly: {engine.tree.recovery_errors}")
        _verify_data(engine, model, errors)
        _verify_tombstone_metadata(engine, model, errors)
        try:
            engine.verify_invariants()
        except InvariantViolationError as exc:
            errors.append(f"recovered tree fails invariants: {exc}")
    finally:
        try:
            engine.close()
        except Exception as exc:  # noqa: BLE001
            errors.append(f"close after recovery failed: {type(exc).__name__}: {exc}")
    for name, check in (("diagnose", diagnose_store), ("scrub", scrub_store)):
        post = check(directory)
        if not post.healthy:
            errors.append(f"store fails {name} after recovery: {post.errors}")
    return errors


def _verify_bitflip(directory: str, model: AckModel) -> list[str]:
    """A flipped bit must be detected (scrub or strict open), never served."""
    errors: list[str] = []
    scrub = scrub_store(directory)
    try:
        engine = _open_engine(directory)
    except CorruptionError:
        # Detected loudly at recovery -- the scrub must agree.
        if scrub.healthy:
            errors.append("strict open detected corruption but `doctor scrub` did not")
        # Salvage mode must either refuse too (manifest flip) or serve
        # only plausible values, read-only.
        try:
            salvage = _open_engine(directory, degraded_ok=True)
        except CorruptionError:
            return errors  # manifest flip: nothing to salvage, still detected
        try:
            if not salvage.degraded:
                errors.append("degraded_ok open of a corrupt store is not degraded")
            for key in sorted(model.live):
                observed = salvage.get(key)
                if observed is not None and not str(observed).startswith(f"{key}:"):
                    errors.append(
                        f"degraded read of {key!r} served foreign value {observed!r}"
                    )
        finally:
            salvage.close()
        return errors
    # Strict open succeeded: the flipped file is no longer referenced
    # (e.g. compacted away before the crash).  Nothing corrupt may be
    # served -- the full recovery contract applies.
    try:
        _verify_data(engine, model, errors)
        _verify_tombstone_metadata(engine, model, errors)
    finally:
        engine.close()
    post = scrub_store(directory)
    if not post.healthy:
        errors.append(
            f"store serves reads yet fails scrub after recovery: {post.errors}"
        )
    return errors


# ---------------------------------------------------------------------------
# the matrix
# ---------------------------------------------------------------------------
@dataclass
class MatrixResult:
    seed: int
    quick: bool
    results: list[ComboResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> list[ComboResult]:
        return [r for r in self.results if not r.ok]

    def triggered_count(self) -> int:
        return sum(1 for r in self.results if r.triggered)

    def summary(self) -> str:
        by_kind: dict[str, list[ComboResult]] = {}
        for r in self.results:
            by_kind.setdefault(r.kind, []).append(r)
        lines = [
            f"crash matrix: {len(self.results)} combos "
            f"({self.triggered_count()} triggered a fault, "
            f"{sum(1 for r in self.results if r.crashed)} crashed), seed={self.seed}"
            + (", quick" if self.quick else "")
        ]
        for kind in sorted(by_kind):
            rs = by_kind[kind]
            bad = sum(1 for r in rs if not r.ok)
            status = "ok" if not bad else f"{bad} FAILED"
            lines.append(
                f"  {kind:<10} {len(rs):>3} combos, "
                f"{sum(1 for r in rs if r.triggered):>3} triggered -- {status}"
            )
        for r in self.failures:
            lines.append(f"  FAIL {r.label()}" + (f" [kept: {r.directory}]" if r.directory else ""))
            for err in r.errors:
                lines.append(f"       - {err}")
        lines.append("  => " + ("PASS" if self.passed else "FAIL"))
        return "\n".join(lines)


def run_crash_matrix(
    seed: int = 0,
    quick: bool = False,
    operations: tuple[str, ...] | None = None,
    progress: Callable[[int, int, ComboResult], None] | None = None,
) -> MatrixResult:
    """Run the full matrix; see the module docstring for the contract.

    ``operations`` restricts the scenario axis (the pytest suite runs a
    slice per operation); ``progress(done, total, result)`` is invoked
    after each combo for live reporting.
    """
    combos = [
        c for c in iter_combos(quick=quick)
        if operations is None or c[0] in operations
    ]
    matrix = MatrixResult(seed=seed, quick=quick)
    base = tempfile.mkdtemp(prefix="crashmatrix-")
    try:
        for index, (operation, point, kind) in enumerate(combos):
            combo_seed = seed * 1_000_003 + index
            result = run_combo(operation, point, kind, combo_seed, base)
            matrix.results.append(result)
            if progress is not None:
                progress(index + 1, len(combos), result)
    finally:
        # Failures pin their workdir; everything else is already gone.
        if not any(Path(base).iterdir()):
            shutil.rmtree(base, ignore_errors=True)
    return matrix
