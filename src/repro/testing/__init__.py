"""Test harnesses that exercise the engine adversarially.

Currently home to the crash matrix (:mod:`repro.testing.crashmatrix`):
every registered storage fault point crossed with every engine operation,
each combination crashed, recovered, and verified.  Importable as a
library (the pytest suite runs a slice of it) and runnable standalone via
``scripts/crash_matrix.py``.
"""

from repro.testing.crashmatrix import MatrixResult, iter_combos, run_crash_matrix

__all__ = ["MatrixResult", "iter_combos", "run_crash_matrix"]
