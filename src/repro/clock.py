"""Simulated time for the engine.

The paper's delete-persistence threshold ``D_th`` is a *time* bound: every
tombstone must be persisted (propagated to the last level and purged) within
``D_th`` of its insertion.  Benchmarking that guarantee against the wall
clock would make every test nondeterministic, so the engine runs on a
*logical clock*: by default one tick per ingested operation (the convention
used throughout the reconstructed evaluation), though callers may advance it
however they like.

Two implementations are provided:

* :class:`LogicalClock` -- a plain counter, advanced explicitly.
* :class:`AutoTickClock` -- a :class:`LogicalClock` that also advances by a
  fixed amount every time it is read.  Handy for driving an engine from code
  that was not written with the clock in mind.
"""

from __future__ import annotations


class LogicalClock:
    """A deterministic counter used as the engine's notion of time.

    Ticks are dimensionless.  The engine advances the clock once per ingest
    operation (put/delete), so ``D_th = 10_000`` reads as "every delete must
    be persisted within 10k subsequent writes".
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"clock must start at a non-negative tick, got {start}")
        self._now = start

    def now(self) -> int:
        """Return the current tick without advancing."""
        return self._now

    def tick(self, amount: int = 1) -> int:
        """Advance the clock by ``amount`` ticks and return the new time."""
        if amount < 0:
            raise ValueError(f"cannot tick backwards (amount={amount})")
        self._now += amount
        return self._now

    def advance_to(self, tick: int) -> int:
        """Move the clock forward to ``tick`` (no-op if already past it)."""
        if tick > self._now:
            self._now = tick
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(now={self._now})"


class AutoTickClock(LogicalClock):
    """A logical clock that advances by ``step`` on every :meth:`now` call."""

    __slots__ = ("step",)

    def __init__(self, start: int = 0, step: int = 1) -> None:
        super().__init__(start)
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        self.step = step

    def now(self) -> int:
        current = self._now
        self._now += self.step
        return current
