"""Engine configuration.

:class:`LSMConfig` is the single knob surface for every engine variant in
this repository: the classical leveling/tiering baselines, FADE (delete-aware
compaction), and KiWi (the key-weaving layout for secondary range deletes)
are all expressed as configurations of the same tree.  That mirrors the
paper's framing -- Acheron/Lethe is "an LSM engine with a small amount of
extra metadata, new compaction policies, and a new physical layout", not a
different data structure -- and guarantees that benchmark comparisons never
cross code paths.

Presets matching the configurations compared in the demonstration are
provided by :func:`baseline_config` and :func:`acheron_config`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError


class CompactionStyle(enum.Enum):
    """How runs are organized within levels.

    * ``LEVELING`` -- each level holds at most one sorted run; merges are
      file-granular (a file plus its overlap in the next level).
    * ``TIERING`` -- each level holds up to ``size_ratio`` runs; when full,
      all runs of the level merge into one run in the next level.
    * ``LAZY_LEVELING`` -- the Dostoevsky hybrid: tiering at every level
      except the last, which is kept as a single leveled run.  Write
      amplification close to tiering, point/range read and space behaviour
      close to leveling (most data lives in the leveled last level).
    """

    LEVELING = "leveling"
    TIERING = "tiering"
    LAZY_LEVELING = "lazy_leveling"


class CompactionGranularity(enum.Enum):
    """How much data one leveling compaction moves.

    * ``FILE`` -- partial compaction: one file plus its overlap in the
      next level (RocksDB-style; what Lethe/Acheron assume, since FADE
      picks individual files).
    * ``LEVEL`` -- classic full-level merges: the whole level merges with
      the whole next level (the original LSM paper's behaviour; kept for
      the design-space comparison).
    """

    FILE = "file"
    LEVEL = "level"


class FilePickPolicy(enum.Enum):
    """Which file a saturation-triggered leveling compaction selects.

    * ``MIN_OVERLAP`` -- the file with the least overlap in the next level
      (classic write-amplification-friendly choice; the baseline default).
    * ``TOMBSTONE_DENSITY`` -- the file whose entries are the most likely to
      be dropped or to invalidate data below, i.e. the highest fraction of
      tombstones, tie-broken by older tombstone age (FADE's choice).
    * ``OLDEST`` -- the file that has sat in the level the longest
      (round-robin-like; a common production default).
    """

    MIN_OVERLAP = "min_overlap"
    TOMBSTONE_DENSITY = "tombstone_density"
    OLDEST = "oldest"


@dataclass(frozen=True)
class DiskModel:
    """Latency model for the simulated block device.

    All values are microseconds of *modeled* time.  Defaults approximate a
    datacenter NVMe SSD: ~90us random page read, ~25us page program (write
    amortized through the device cache), and a small per-request overhead.
    The absolute values only matter for the modeled-time columns of the
    benchmark tables; every claim checked in EXPERIMENTS.md is stated in
    device page I/O counts, which this model merely prices.
    """

    read_page_us: float = 90.0
    write_page_us: float = 25.0
    request_overhead_us: float = 8.0

    def validate(self) -> None:
        if self.read_page_us < 0 or self.write_page_us < 0:
            raise ConfigError("disk latencies must be non-negative")
        if self.request_overhead_us < 0:
            raise ConfigError("request overhead must be non-negative")


@dataclass(frozen=True)
class LSMConfig:
    """Complete configuration of one engine instance.

    Shape parameters
    ----------------
    memtable_entries:
        Capacity of the in-memory write buffer, in entries.  A flush is
        triggered when the buffer reaches this size.
    size_ratio:
        Growth factor ``T`` between adjacent levels.  Level ``i`` (1-based)
        holds up to ``memtable_entries * T**i`` entries.
    policy:
        :class:`CompactionStyle` -- leveling or tiering.

    Physical layout
    ---------------
    entries_per_page:
        Entries stored per disk page; the unit of I/O accounting.
    pages_per_tile:
        ``h``, the number of pages per *delete tile*.  ``h == 1`` is the
        classical sort-key-only layout.  ``h > 1`` enables KiWi: tiles are
        ordered by sort key, pages *within* a tile are ordered by delete
        key, so a secondary range delete can drop whole pages.
    max_file_entries:
        Maximum entries per file (SSTable).  Runs are partitioned into
        files at this boundary so compaction can be file-granular.
        ``0`` means "use ``memtable_entries``".

    Filters, cache
    --------------
    bloom_bits_per_key:
        Memory budget of the per-file Bloom filters.  ``0`` disables them.
    cache_pages:
        Capacity of the shared block cache in pages.  ``0`` disables it.

    Delete-awareness (the paper's contribution)
    -------------------------------------------
    delete_persistence_threshold:
        ``D_th`` in clock ticks.  ``None`` disables FADE entirely -- the
        engine then behaves as the state-of-the-art baseline with no
        persistence guarantee.  When set, every tombstone is guaranteed to
        be purged within ``D_th`` ticks of insertion.
    file_pick:
        :class:`FilePickPolicy` for saturation compactions.
    drop_tombstones_at_bottom:
        Purge point tombstones when they are merged into the last level.
        Always true in practice; exposed for the T3 ablation.

    Byte accounting
    ---------------
    key_size_bytes / value_size_bytes:
        Logical sizes used for byte-level metrics (the engine itself is
        value-agnostic).  A tombstone occupies ``key_size_bytes +
        tombstone_overhead_bytes``.
    """

    # --- shape ---
    memtable_entries: int = 4096
    size_ratio: int = 4
    policy: CompactionStyle = CompactionStyle.LEVELING

    # --- physical layout ---
    entries_per_page: int = 64
    pages_per_tile: int = 1
    max_file_entries: int = 0

    # --- filters & cache ---
    bloom_bits_per_key: float = 10.0
    #: ``"uniform"`` gives every file the same bits/key; ``"monkey"``
    #: reallocates in the Monkey style -- deeper (exponentially larger)
    #: levels get fewer bits, since a false positive there is amortized
    #: over more data.  Bits drop by ``ln(T)/ln(2)^2`` per level, the
    #: equal-marginal-benefit spacing, floored at zero.
    bloom_allocation: str = "uniform"
    #: With the KiWi weave (h > 1), a point lookup must probe up to ``h``
    #: candidate pages per tile.  Enabling per-page filters adds a small
    #: Bloom filter to every page of a woven file so absent candidates are
    #: skipped without I/O -- the paper's mitigation for the weave's
    #: point-read penalty, at roughly double the filter memory.
    kiwi_page_filters: bool = False
    #: Key the bloom digests with a secret per-tree random salt (generated
    #: at create, persisted in the manifest).  Off by default: unsalted
    #: trees keep the historical deterministic digests, so every archived
    #: benchmark and durable store stays bit-identical.  Salted trees
    #: defeat offline-crafted false-positive key streams (an adversary
    #: cannot evaluate the keyed hash without the salt).
    bloom_salted: bool = False
    cache_pages: int = 0
    #: Hardened block-cache admission: a TinyLFU doorkeeper (one-hit
    #: wonders never touch the frequency sketch, so floods cannot decay
    #: the hot set's frequencies) plus a negative-lookup guard (pages that
    #: only entered the cache to answer a bloom false positive are dropped
    #: once the miss is confirmed).  Off by default -- the unhardened
    #: cache keeps its exact historical admission decisions.
    cache_hardened: bool = False

    # --- compaction shape ---
    granularity: CompactionGranularity = CompactionGranularity.FILE
    #: Move a file to the next level without rewriting it when its key
    #: range has no overlap there (RocksDB's trivial move).  Free in
    #: device I/O; disable to model engines that always rewrite.
    trivial_moves: bool = True

    # --- delete-awareness ---
    delete_persistence_threshold: int | None = None
    file_pick: FilePickPolicy = FilePickPolicy.MIN_OVERLAP
    drop_tombstones_at_bottom: bool = True

    # --- byte accounting ---
    key_size_bytes: int = 16
    value_size_bytes: int = 112
    tombstone_overhead_bytes: int = 8

    # --- device model ---
    disk: DiskModel = field(default_factory=DiskModel)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # validation and derived quantities
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ConfigError` if any field is out of range."""
        if self.memtable_entries < 1:
            raise ConfigError(f"memtable_entries must be >= 1, got {self.memtable_entries}")
        if self.size_ratio < 2:
            raise ConfigError(f"size_ratio must be >= 2, got {self.size_ratio}")
        if self.entries_per_page < 1:
            raise ConfigError(f"entries_per_page must be >= 1, got {self.entries_per_page}")
        if self.pages_per_tile < 1:
            raise ConfigError(f"pages_per_tile must be >= 1, got {self.pages_per_tile}")
        if self.max_file_entries < 0:
            raise ConfigError(f"max_file_entries must be >= 0, got {self.max_file_entries}")
        if self.bloom_bits_per_key < 0:
            raise ConfigError(f"bloom_bits_per_key must be >= 0, got {self.bloom_bits_per_key}")
        if self.bloom_allocation not in ("uniform", "monkey"):
            raise ConfigError(
                f"bloom_allocation must be 'uniform' or 'monkey', got {self.bloom_allocation!r}"
            )
        if self.cache_pages < 0:
            raise ConfigError(f"cache_pages must be >= 0, got {self.cache_pages}")
        if self.delete_persistence_threshold is not None and self.delete_persistence_threshold < 1:
            raise ConfigError(
                "delete_persistence_threshold (D_th) must be >= 1 tick or None, "
                f"got {self.delete_persistence_threshold}"
            )
        if self.key_size_bytes < 1 or self.value_size_bytes < 0:
            raise ConfigError("entry byte sizes must be positive")
        if self.tombstone_overhead_bytes < 0:
            raise ConfigError("tombstone_overhead_bytes must be >= 0")
        if not isinstance(self.policy, CompactionStyle):
            raise ConfigError(f"policy must be a CompactionStyle, got {self.policy!r}")
        if not isinstance(self.granularity, CompactionGranularity):
            raise ConfigError(
                f"granularity must be a CompactionGranularity, got {self.granularity!r}"
            )
        if not isinstance(self.file_pick, FilePickPolicy):
            raise ConfigError(f"file_pick must be a FilePickPolicy, got {self.file_pick!r}")
        self.disk.validate()

    @property
    def fade_enabled(self) -> bool:
        """True when the engine enforces a delete persistence threshold."""
        return self.delete_persistence_threshold is not None

    @property
    def kiwi_enabled(self) -> bool:
        """True when the key-weaving layout is active (``h > 1``)."""
        return self.pages_per_tile > 1

    @property
    def file_entry_limit(self) -> int:
        """Resolved maximum entries per file."""
        return self.max_file_entries or self.memtable_entries

    @property
    def page_size_bytes(self) -> int:
        """Logical page size implied by the entry sizes."""
        return self.entries_per_page * (self.key_size_bytes + self.value_size_bytes)

    def level_capacity_entries(self, level: int) -> int:
        """Entry capacity of on-disk level ``level`` (1-based)."""
        if level < 1:
            raise ValueError(f"on-disk levels are 1-based, got {level}")
        return self.memtable_entries * self.size_ratio**level

    def bloom_bits_for_level(self, level: int) -> float:
        """Bits/key for files built at ``level`` under the allocation policy."""
        if level < 1:
            raise ValueError(f"on-disk levels are 1-based, got {level}")
        if self.bloom_allocation == "uniform" or self.bloom_bits_per_key == 0:
            return self.bloom_bits_per_key
        drop_per_level = math.log(self.size_ratio) / (math.log(2) ** 2)
        return max(0.0, self.bloom_bits_per_key - drop_per_level * (level - 1))

    def entry_bytes(self, is_tombstone: bool) -> int:
        """Logical size of one entry for byte-level accounting."""
        if is_tombstone:
            return self.key_size_bytes + self.tombstone_overhead_bytes
        return self.key_size_bytes + self.value_size_bytes

    def with_updates(self, **changes: object) -> "LSMConfig":
        """Return a copy with ``changes`` applied (validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # serialization (the manifest stores the engine's configuration so a
    # durable directory is self-describing -- tools can open it without
    # being told how it was created)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation (enums by value, nested disk model)."""
        return {
            "memtable_entries": self.memtable_entries,
            "size_ratio": self.size_ratio,
            "policy": self.policy.value,
            "granularity": self.granularity.value,
            "trivial_moves": self.trivial_moves,
            "entries_per_page": self.entries_per_page,
            "pages_per_tile": self.pages_per_tile,
            "max_file_entries": self.max_file_entries,
            "bloom_bits_per_key": self.bloom_bits_per_key,
            "bloom_allocation": self.bloom_allocation,
            "kiwi_page_filters": self.kiwi_page_filters,
            "bloom_salted": self.bloom_salted,
            "cache_pages": self.cache_pages,
            "cache_hardened": self.cache_hardened,
            "delete_persistence_threshold": self.delete_persistence_threshold,
            "file_pick": self.file_pick.value,
            "drop_tombstones_at_bottom": self.drop_tombstones_at_bottom,
            "key_size_bytes": self.key_size_bytes,
            "value_size_bytes": self.value_size_bytes,
            "tombstone_overhead_bytes": self.tombstone_overhead_bytes,
            "disk": {
                "read_page_us": self.disk.read_page_us,
                "write_page_us": self.disk.write_page_us,
                "request_overhead_us": self.disk.request_overhead_us,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LSMConfig":
        """Inverse of :meth:`to_dict`; raises ConfigError on bad data.

        Fields absent from ``data`` take their defaults, so manifests
        written by older versions of the library keep loading after new
        knobs are added; unknown fields are rejected.
        """
        try:
            fields = dict(data)
            if "policy" in fields:
                fields["policy"] = CompactionStyle(fields["policy"])
            if "granularity" in fields:
                fields["granularity"] = CompactionGranularity(fields["granularity"])
            if "file_pick" in fields:
                fields["file_pick"] = FilePickPolicy(fields["file_pick"])
            if "disk" in fields:
                fields["disk"] = DiskModel(**fields["disk"])
            return cls(**fields)
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"invalid serialized config: {exc}") from exc


def baseline_config(**overrides: object) -> LSMConfig:
    """The state-of-the-art baseline the paper compares against.

    Leveling, Bloom filters, no delete-awareness: tombstones sink only
    through ordinary saturation compactions, so delete persistence latency
    is unbounded.
    """
    return LSMConfig(**overrides)  # type: ignore[arg-type]


def acheron_config(
    delete_persistence_threshold: int = 50_000,
    pages_per_tile: int = 8,
    **overrides: object,
) -> LSMConfig:
    """The demonstrated delete-aware engine: FADE + KiWi.

    ``delete_persistence_threshold`` is ``D_th`` in clock ticks;
    ``pages_per_tile`` is KiWi's ``h``.  File picking defaults to the
    delete-aware policy but may be overridden (the T3 ablation does).
    All other knobs default to the same values as :func:`baseline_config`
    so the pair differ only in delete-awareness.
    """
    overrides.setdefault("file_pick", FilePickPolicy.TOMBSTONE_DENSITY)
    return LSMConfig(
        delete_persistence_threshold=delete_persistence_threshold,
        pages_per_tile=pages_per_tile,
        **overrides,  # type: ignore[arg-type]
    )
