"""Tests for the store doctor and the CLI."""

import pytest

from repro.cli import main
from repro.config import acheron_config, baseline_config
from repro.lsm.tree import LSMTree
from repro.storage.filestore import FileStore
from repro.tools.doctor import diagnose_store

from conftest import TINY


def build_store(tmp_path, deletes=True, config=None):
    config = config or acheron_config(
        delete_persistence_threshold=2_000, pages_per_tile=4, **TINY
    )
    tree = LSMTree.open(config, tmp_path)
    for k in range(600):
        tree.put(k, f"v{k}")
    if deletes:
        for k in range(0, 300, 2):
            tree.delete(k)
    for k in range(600, 640):  # leave some entries in the WAL
        tree.put(k, k)
    tree._wal.close()  # simulate crash: no clean close/flush
    return config


class TestDoctor:
    def test_healthy_store(self, tmp_path):
        build_store(tmp_path)
        report = diagnose_store(tmp_path)
        assert report.healthy, report.render()
        assert report.stats["sstables"] > 0
        assert report.stats["wal_entries"] > 0
        assert "HEALTHY" in report.render()

    def test_uninitialized_directory(self, tmp_path):
        report = diagnose_store(tmp_path)
        assert not report.healthy
        assert any("manifest" in e for e in report.errors)

    def test_corrupt_manifest(self, tmp_path):
        build_store(tmp_path)
        FileStore(tmp_path).manifest_path.write_text("{broken")
        report = diagnose_store(tmp_path)
        assert not report.healthy

    def test_missing_sstable_detected(self, tmp_path):
        build_store(tmp_path)
        store = FileStore(tmp_path)
        manifest = store.read_manifest()
        victim = manifest["levels"][0][0][0]
        store.delete_sstable(victim)
        report = diagnose_store(tmp_path)
        assert not report.healthy
        assert any(f"sstable {victim}" in e for e in report.errors)

    def test_bitflip_in_sstable_detected(self, tmp_path):
        build_store(tmp_path)
        store = FileStore(tmp_path)
        victim = store.list_sstable_ids()[0]
        path = store.sstable_path(victim)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        report = diagnose_store(tmp_path)
        assert not report.healthy

    def test_orphan_sstable_is_a_warning(self, tmp_path):
        build_store(tmp_path)
        store = FileStore(tmp_path)
        store.write_sstable(99_999, [[[]]], {})  # not referenced anywhere
        report = diagnose_store(tmp_path)
        assert report.healthy  # warning, not error
        assert any("orphan" in w for w in report.warnings)

    def test_interior_wal_corruption_detected(self, tmp_path):
        build_store(tmp_path)
        wal_path = FileStore(tmp_path).wal_path
        data = bytearray(wal_path.read_bytes())
        data[9] ^= 0xFF  # first record's payload
        wal_path.write_bytes(bytes(data))
        report = diagnose_store(tmp_path)
        assert not report.healthy
        assert any("WAL" in e for e in report.errors)

    def test_baseline_store_is_also_diagnosable(self, tmp_path):
        build_store(tmp_path, config=baseline_config(**TINY))
        assert diagnose_store(tmp_path).healthy


class TestCLI:
    def test_verify_healthy_exits_zero(self, tmp_path, capsys):
        build_store(tmp_path)
        assert main(["verify", str(tmp_path)]) == 0
        assert "HEALTHY" in capsys.readouterr().out

    def test_verify_corrupt_exits_one(self, tmp_path, capsys):
        build_store(tmp_path)
        FileStore(tmp_path).manifest_path.write_text("{broken")
        assert main(["verify", str(tmp_path)]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_inspect_uses_recorded_config(self, tmp_path, capsys):
        build_store(tmp_path)
        assert main(["inspect", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "tree @" in out
        assert "persistence" in out

    def test_workload_command(self, capsys):
        code = main(
            [
                "workload",
                "--engine",
                "acheron",
                "--ops",
                "800",
                "--preload",
                "500",
                "--deletes",
                "0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "modeled ops/s" in out
        assert "persistence" in out

    def test_workload_lazy_leveling_baseline(self, capsys):
        code = main(
            [
                "workload",
                "--engine",
                "baseline",
                "--policy",
                "lazy_leveling",
                "--ops",
                "600",
                "--preload",
                "400",
            ]
        )
        assert code == 0
        assert "baseline" in capsys.readouterr().out

    def test_demo_command(self, capsys):
        code = main(["demo", "--ops", "600", "--preload", "400", "--d-th", "500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "=== baseline ::" in out
        assert "=== acheron ::" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCLITraces:
    def test_record_then_replay(self, tmp_path, capsys):
        trace = tmp_path / "w.trace"
        assert (
            main(["record", str(trace), "--ops", "400", "--preload", "300", "--deletes", "0.2"])
            == 0
        )
        assert "recorded 700 operations" in capsys.readouterr().out
        assert trace.exists()
        code = main(["workload", "--engine", "baseline", "--replay", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "700 ops" in out

    def test_replay_equals_generated(self, tmp_path, capsys):
        trace = tmp_path / "w.trace"
        main(["record", str(trace), "--ops", "300", "--preload", "200", "--seed", "9"])
        capsys.readouterr()
        from repro.workload.generator import generate_operations
        from repro.workload.spec import WorkloadSpec
        from repro.workload.trace import load_trace

        spec = WorkloadSpec(operations=300, preload=200, seed=9).with_delete_fraction(0.15)
        assert load_trace(trace) == generate_operations(spec)


class TestScrub:
    def test_scrub_healthy_store(self, tmp_path, capsys):
        build_store(tmp_path)
        from repro.tools.doctor import scrub_store

        report = scrub_store(tmp_path)
        assert report.healthy
        out = report.render()
        assert "scrub" in out
        assert "CORRUPT" not in out

    def test_scrub_detects_bitflipped_sstable(self, tmp_path):
        """The hard requirement: a flipped bit in a referenced sstable must
        be caught by scrub, never silently served."""
        build_store(tmp_path)
        from repro.tools.doctor import scrub_store

        store = FileStore(tmp_path)
        victim = store.sstable_path(store.list_sstable_ids()[0])
        data = bytearray(victim.read_bytes())
        data[len(data) // 3] ^= 0x04
        victim.write_bytes(bytes(data))
        report = scrub_store(tmp_path)
        assert not report.healthy
        assert "CORRUPT" in report.render() or "checksum" in report.render()

    def test_scrub_flags_orphan_sstables(self, tmp_path):
        build_store(tmp_path)
        from repro.tools.doctor import scrub_store

        FileStore(tmp_path).write_sstable(7_777, [[[]]], {"created_at": 0})
        report = scrub_store(tmp_path)
        assert "orphan" in report.render()

    def test_scrub_detects_missing_referenced_sstable(self, tmp_path):
        build_store(tmp_path)
        from repro.tools.doctor import scrub_store

        store = FileStore(tmp_path)
        store.sstable_path(store.list_sstable_ids()[0]).unlink()
        report = scrub_store(tmp_path)
        assert not report.healthy

    def test_cli_scrub_exit_codes(self, tmp_path, capsys):
        build_store(tmp_path)
        assert main(["scrub", str(tmp_path)]) == 0
        store = FileStore(tmp_path)
        victim = store.sstable_path(store.list_sstable_ids()[0])
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0x01
        victim.write_bytes(bytes(data))
        assert main(["scrub", str(tmp_path)]) == 1

    def test_doctor_module_main(self, tmp_path, capsys):
        build_store(tmp_path)
        from repro.tools import doctor

        assert doctor.main(["diagnose", str(tmp_path)]) == 0
        assert doctor.main(["scrub", str(tmp_path)]) == 0
        capsys.readouterr()
        FileStore(tmp_path).manifest_path.write_text("{torn")
        assert doctor.main(["scrub", str(tmp_path)]) == 1
