"""Unit and property tests for the merge/resolve iterators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.entry import Entry
from repro.lsm.iterator import CountingIterator, merge_resolve, scan_merge, visible_entries


def put(key, seqno):
    return Entry.put(key, f"v{key}@{seqno}", seqno)


def tomb(key, seqno):
    return Entry.tombstone(key, seqno)


class TestMergeResolve:
    def test_empty_sources(self):
        assert list(merge_resolve([])) == []
        assert list(merge_resolve([[], []])) == []

    def test_single_source_passthrough(self):
        src = [put(1, 1), put(2, 2)]
        assert list(merge_resolve([src])) == src

    def test_disjoint_sources_interleave(self):
        a = [put(1, 1), put(5, 2)]
        b = [put(3, 3), put(7, 4)]
        assert [e.key for e in merge_resolve([a, b])] == [1, 3, 5, 7]

    def test_newest_version_wins(self):
        old = [put(1, 1), put(2, 2)]
        new = [put(1, 10)]
        resolved = {e.key: e for e in merge_resolve([old, new])}
        assert resolved[1].seqno == 10
        assert resolved[2].seqno == 2

    def test_tombstone_wins_when_newer(self):
        resolved = list(merge_resolve([[put(1, 1)], [tomb(1, 5)]]))
        assert len(resolved) == 1
        assert resolved[0].is_tombstone

    def test_put_wins_over_older_tombstone(self):
        resolved = list(merge_resolve([[tomb(1, 1)], [put(1, 5)]]))
        assert resolved[0].is_put

    def test_shadow_callback_reports_losers(self):
        shadowed = []
        list(
            merge_resolve(
                [[put(1, 1), put(2, 2)], [put(1, 5), tomb(2, 9)]],
                on_shadowed=lambda loser, winner: shadowed.append((loser.seqno, winner.seqno)),
            )
        )
        assert sorted(shadowed) == [(1, 5), (2, 9)]

    def test_three_way_shadowing(self):
        shadowed = []
        resolved = list(
            merge_resolve(
                [[put(1, 1)], [put(1, 2)], [put(1, 3)]],
                on_shadowed=lambda loser, winner: shadowed.append(loser.seqno),
            )
        )
        assert resolved[0].seqno == 3
        assert sorted(shadowed) == [1, 2]

    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(0, 30), st.booleans()),
                max_size=20,
                unique_by=lambda kv: kv[0],
            ),
            max_size=5,
        )
    )
    @settings(max_examples=60)
    def test_property_matches_dict_model(self, key_sets):
        # Assign globally unique seqnos; later sources are newer.
        seqno = 0
        sources = []
        model: dict[int, Entry] = {}
        for key_set in key_sets:
            source = []
            for key, is_delete in sorted(key_set):
                seqno += 1
                entry = tomb(key, seqno) if is_delete else put(key, seqno)
                source.append(entry)
            sources.append(source)
        for source in sources:
            for entry in source:
                if entry.key not in model or entry.seqno > model[entry.key].seqno:
                    model[entry.key] = entry
        resolved = list(merge_resolve([list(s) for s in sources]))
        assert [e.key for e in resolved] == sorted(model)
        for entry in resolved:
            assert entry == model[entry.key]


class TestVisibility:
    def test_visible_entries_hide_tombstones(self):
        resolved = [put(1, 1), tomb(2, 2), put(3, 3)]
        assert [e.key for e in visible_entries(resolved)] == [1, 3]

    def test_scan_merge_hides_deleted_keys(self):
        got = list(scan_merge([[put(1, 1), put(2, 2)], [tomb(2, 5)]]))
        assert [e.key for e in got] == [1]

    def test_scan_merge_limit(self):
        src = [[put(k, k + 1) for k in range(10)]]
        assert len(list(scan_merge(src, limit=3))) == 3

    def test_scan_merge_limit_counts_only_visible(self):
        sources = [[put(1, 1), put(2, 2), put(3, 3)], [tomb(1, 9)]]
        got = list(scan_merge(sources, limit=2))
        assert [e.key for e in got] == [2, 3]

    def test_counting_iterator(self):
        counter = CountingIterator([put(1, 1), put(2, 2)])
        assert [e.key for e in counter] == [1, 2]
        assert counter.count == 2
