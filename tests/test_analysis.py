"""Tests for the analytical cost model (sanity + agreement with the
measured engine within first-order tolerance)."""

import pytest

from repro.analysis.model import CostModel, WorkloadProfile
from repro.config import CompactionStyle, acheron_config, baseline_config

from conftest import TINY, make_baseline


@pytest.fixture(autouse=True)
def serial_write_path(monkeypatch):
    # The cost model predicts the serial flush/compaction schedule;
    # batched background flushes (REPRO_WORKERS from the environment)
    # legitimately halve measured write amplification and shift level
    # shapes, so agreement tests must measure the serial engine.
    monkeypatch.setenv("REPRO_WORKERS", "1")


def model(**overrides):
    params = dict(TINY)
    params.update(overrides)
    return CostModel(baseline_config(**params))


class TestShapePredictions:
    def test_levels_exact_for_geometric_capacities(self):
        m = model(memtable_entries=64, size_ratio=3)
        # capacities: L1=192, L1+L2=768, +L3=2496...
        assert m.levels(0) == 0
        assert m.levels(1) == 1
        assert m.levels(192) == 1
        assert m.levels(193) == 2
        assert m.levels(768) == 2
        assert m.levels(769) == 3

    def test_levels_matches_engine(self):
        for n in (150, 700, 2500):
            engine = make_baseline()
            for k in range(n):
                engine.put(k, k)
            engine.flush()
            predicted = model().levels(n)
            actual = engine.tree.deepest_nonempty_level()
            assert abs(predicted - actual) <= 1, (n, predicted, actual)

    def test_runs_per_level(self):
        assert model().runs_per_level() == 1.0
        tier = model(policy=CompactionStyle.TIERING)
        assert tier.runs_per_level() == (1 + 3) / 2  # T=3


class TestWriteAmp:
    def test_policy_ordering(self):
        n = 5000
        leveling = model().write_amplification(n)
        lazy = model(policy=CompactionStyle.LAZY_LEVELING).write_amplification(n)
        tiering = model(policy=CompactionStyle.TIERING).write_amplification(n)
        assert tiering <= lazy <= leveling

    def test_grows_with_data(self):
        m = model()
        assert m.write_amplification(100) < m.write_amplification(100_000)

    def test_within_2x_of_measured_leveling(self):
        n = 4000
        engine = make_baseline(trivial_moves=False)
        for k in range(n):
            engine.put((k * 2654435761) % n, k)  # shuffled, mostly unique
        from repro.metrics.amplification import write_amplification

        measured = write_amplification(engine.tree)
        predicted = model().write_amplification(n)
        assert predicted / 2 <= measured <= predicted * 2, (predicted, measured)


class TestReadModel:
    def test_bloom_fp_rate_reasonable(self):
        assert model(bloom_bits_per_key=0).bloom_false_positive_rate() == 1.0
        ten_bits = model(bloom_bits_per_key=10).bloom_false_positive_rate()
        assert 0.001 < ten_bits < 0.02  # ~1% at 10 bits/key

    def test_missing_lookup_cheaper_than_existing(self):
        m = model()
        n = 10_000
        assert m.point_lookup_pages(n, exists=False) < m.point_lookup_pages(n, exists=True)

    def test_weave_penalty(self):
        classic = model(pages_per_tile=1).point_lookup_pages(10_000, exists=True)
        woven = model(pages_per_tile=8).point_lookup_pages(10_000, exists=True)
        assert woven > classic

    def test_existing_lookup_close_to_one_page_classic(self):
        cost = model().point_lookup_pages(10_000, exists=True)
        assert 1.0 <= cost < 1.3


class TestDeleteModel:
    def test_free_drop_fraction_grows_with_h(self):
        fractions = [
            model(pages_per_tile=h).kiwi_free_drop_fraction(0.33) for h in (1, 4, 16)
        ]
        assert fractions == sorted(fractions)
        assert fractions[0] == 0.0  # classic layout drops nothing

    def test_secondary_delete_ordering(self):
        pages, s = 1000, 0.33
        woven = model(pages_per_tile=16).secondary_delete_pages(pages, s)
        classic = model(pages_per_tile=1).secondary_delete_pages(pages, s)
        rewrite = model().full_rewrite_delete_pages(pages, s)
        assert woven < classic < rewrite

    def test_matches_measured_f5_within_2x(self):
        from conftest import make_acheron

        engine = make_acheron(delete_persistence_threshold=10**6, pages_per_tile=4)
        n = 2000
        for i in range(n):
            engine.put((i * 37) % n, f"v{i}")
        engine.flush()
        tree_pages = engine.tree.page_count_on_disk
        report = engine.delete_range(0, engine.clock.now() // 3, method="kiwi")
        predicted = CostModel(engine.config).secondary_delete_pages(tree_pages, 1 / 3)
        measured = report.io.total_pages
        assert predicted / 2.5 <= measured <= predicted * 2.5, (predicted, measured)


class TestFadeModel:
    def _acheron_model(self, d_th=9000):
        params = dict(TINY)
        return CostModel(acheron_config(d_th, pages_per_tile=1, **params))

    def test_ttl_table_matches_scheduler(self):
        from repro.core.fade import FadeScheduler

        params = dict(TINY)
        config = acheron_config(9000, pages_per_tile=1, **params)
        m = CostModel(config)
        scheduler = FadeScheduler(config)
        entries = 2000
        depth = m.levels(entries)
        for level, share in m.fade_ttl_table(entries):
            assert share == scheduler.cumulative_ttl(level, depth)

    def test_ttl_table_requires_threshold(self):
        with pytest.raises(ValueError):
            model().fade_ttl_table(1000)

    def test_persistence_bound(self):
        assert self._acheron_model(1234).persistence_bound() == 1234
        assert model().persistence_bound() is None


class TestSummaryAndProfile:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(unique_entries=0)
        with pytest.raises(ValueError):
            WorkloadProfile(unique_entries=10, delete_fraction=1.0)
        with pytest.raises(ValueError):
            WorkloadProfile(unique_entries=10, range_delete_selectivity=0.0)

    def test_summary_keys(self):
        summary = model().summary(WorkloadProfile(unique_entries=5000))
        assert set(summary) == {
            "levels",
            "write_amplification",
            "pages_per_existing_lookup",
            "pages_per_missing_lookup",
            "space_amplification_bound",
            "bloom_fp_rate",
            "persistence_bound",
        }

    def test_space_bound_exceeds_measured(self):
        profile = WorkloadProfile(unique_entries=3000, delete_fraction=0.2)
        engine = make_baseline()
        import random

        rng = random.Random(3)
        for i in range(4000):
            key = rng.randrange(3000)
            if rng.random() < 0.2:
                engine.delete(key)
            else:
                engine.put(key, i)
        from repro.metrics.amplification import space_amplification

        measured = space_amplification(engine.tree)
        bound = model().space_amplification_bound(profile)
        assert measured <= bound * 1.5, (measured, bound)


class TestPageFilterModel:
    def test_page_filters_shrink_predicted_weave_penalty(self):
        plain = model(pages_per_tile=8).point_lookup_pages(10_000, exists=True)
        filtered = model(pages_per_tile=8, kiwi_page_filters=True).point_lookup_pages(
            10_000, exists=True
        )
        classic = model(pages_per_tile=1).point_lookup_pages(10_000, exists=True)
        assert filtered < plain
        assert filtered < classic * 1.5  # near-classic cost

    def test_prediction_matches_measured_mitigation(self):
        from conftest import TINY
        from repro.config import acheron_config
        from repro.core.engine import AcheronEngine

        params = dict(TINY)
        config = acheron_config(
            delete_persistence_threshold=10**6,
            pages_per_tile=8,
            kiwi_page_filters=True,
            **params,
        )
        engine = AcheronEngine(config)
        count = 1_000
        for k in range(count):
            engine.put((k * 37) % count, k)
        engine.flush()
        stats = engine.disk.stats
        before = stats.pages_read
        probes = 400
        for k in range(probes):
            engine.get((k * 7) % count)
        measured = (stats.pages_read - before) / probes
        predicted = CostModel(config).point_lookup_pages(count, exists=True)
        assert predicted / 2.5 <= measured <= predicted * 2.5, (predicted, measured)
