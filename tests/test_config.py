"""Unit tests for configuration validation and derived quantities."""

import pytest

from repro.config import (
    CompactionStyle,
    DiskModel,
    FilePickPolicy,
    LSMConfig,
    acheron_config,
    baseline_config,
)
from repro.errors import ConfigError


class TestValidation:
    def test_default_config_is_valid(self):
        LSMConfig()  # __post_init__ validates

    @pytest.mark.parametrize(
        "field,value",
        [
            ("memtable_entries", 0),
            ("size_ratio", 1),
            ("entries_per_page", 0),
            ("pages_per_tile", 0),
            ("max_file_entries", -1),
            ("bloom_bits_per_key", -0.5),
            ("cache_pages", -1),
            ("delete_persistence_threshold", 0),
            ("key_size_bytes", 0),
            ("value_size_bytes", -1),
            ("tombstone_overhead_bytes", -1),
        ],
    )
    def test_out_of_range_fields_rejected(self, field, value):
        with pytest.raises(ConfigError):
            LSMConfig(**{field: value})

    def test_bad_enum_types_rejected(self):
        with pytest.raises(ConfigError):
            LSMConfig(policy="leveling")  # must be the enum, not a string
        with pytest.raises(ConfigError):
            LSMConfig(file_pick="oldest")

    def test_negative_disk_latency_rejected(self):
        with pytest.raises(ConfigError):
            LSMConfig(disk=DiskModel(read_page_us=-1))

    def test_with_updates_validates(self):
        config = LSMConfig()
        with pytest.raises(ConfigError):
            config.with_updates(size_ratio=0)

    def test_with_updates_returns_modified_copy(self):
        config = LSMConfig(size_ratio=4)
        updated = config.with_updates(size_ratio=8)
        assert updated.size_ratio == 8
        assert config.size_ratio == 4


class TestDerivedQuantities:
    def test_fade_enabled_tracks_threshold(self):
        assert not LSMConfig().fade_enabled
        assert LSMConfig(delete_persistence_threshold=100).fade_enabled

    def test_kiwi_enabled_tracks_tile_size(self):
        assert not LSMConfig(pages_per_tile=1).kiwi_enabled
        assert LSMConfig(pages_per_tile=2).kiwi_enabled

    def test_file_entry_limit_defaults_to_memtable(self):
        assert LSMConfig(memtable_entries=100).file_entry_limit == 100
        assert LSMConfig(max_file_entries=40).file_entry_limit == 40

    def test_level_capacity_grows_geometrically(self):
        config = LSMConfig(memtable_entries=10, size_ratio=3)
        assert config.level_capacity_entries(1) == 30
        assert config.level_capacity_entries(2) == 90
        assert config.level_capacity_entries(3) == 270

    def test_level_capacity_rejects_level_zero(self):
        with pytest.raises(ValueError):
            LSMConfig().level_capacity_entries(0)

    def test_entry_bytes_distinguishes_tombstones(self):
        config = LSMConfig(key_size_bytes=16, value_size_bytes=100, tombstone_overhead_bytes=8)
        assert config.entry_bytes(is_tombstone=False) == 116
        assert config.entry_bytes(is_tombstone=True) == 24

    def test_page_size_bytes(self):
        config = LSMConfig(entries_per_page=10, key_size_bytes=16, value_size_bytes=84)
        assert config.page_size_bytes == 1000


class TestPresets:
    def test_baseline_has_no_delete_awareness(self):
        config = baseline_config()
        assert not config.fade_enabled
        assert not config.kiwi_enabled
        assert config.file_pick is FilePickPolicy.MIN_OVERLAP

    def test_acheron_enables_fade_and_kiwi(self):
        config = acheron_config(delete_persistence_threshold=123, pages_per_tile=4)
        assert config.delete_persistence_threshold == 123
        assert config.pages_per_tile == 4
        assert config.file_pick is FilePickPolicy.TOMBSTONE_DENSITY

    def test_presets_share_all_other_knobs(self):
        base = baseline_config()
        ach = acheron_config()
        assert base.memtable_entries == ach.memtable_entries
        assert base.size_ratio == ach.size_ratio
        assert base.entries_per_page == ach.entries_per_page
        assert base.bloom_bits_per_key == ach.bloom_bits_per_key
        assert base.policy is ach.policy is CompactionStyle.LEVELING

    def test_overrides_flow_through(self):
        config = acheron_config(size_ratio=10, memtable_entries=99)
        assert config.size_ratio == 10
        assert config.memtable_entries == 99


class TestSerialization:
    def test_roundtrip_default(self):
        config = LSMConfig()
        assert LSMConfig.from_dict(config.to_dict()) == config

    def test_roundtrip_fully_tuned(self):
        from repro.config import CompactionGranularity

        config = acheron_config(
            4321,
            pages_per_tile=16,
            policy=CompactionStyle.LAZY_LEVELING,
            granularity=CompactionGranularity.LEVEL,
            trivial_moves=False,
            bloom_allocation="monkey",
            kiwi_page_filters=True,
            cache_pages=99,
        )
        assert LSMConfig.from_dict(config.to_dict()) == config

    def test_missing_new_fields_take_defaults(self):
        # A manifest written before newer knobs existed must still load.
        data = LSMConfig().to_dict()
        for newer in ("granularity", "trivial_moves", "bloom_allocation", "kiwi_page_filters"):
            del data[newer]
        config = LSMConfig.from_dict(data)
        assert config.trivial_moves is True
        assert config.bloom_allocation == "uniform"

    def test_unknown_fields_rejected(self):
        data = LSMConfig().to_dict()
        data["flux_capacitor"] = True
        with pytest.raises(ConfigError):
            LSMConfig.from_dict(data)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            LSMConfig.from_dict({"policy": "quantum"})
