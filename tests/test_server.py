"""The served engine: protocol totality, equivalence, admission, recovery.

Four areas, mirroring the subsystem's contract:

* the wire codec round-trips every data-plane value and the frame
  decoder is *total* -- any byte soup in any segmentation yields frames,
  "needs more bytes", or a structured :class:`ProtocolError`, never a
  crash or a hang;
* a served replay is contents-digest-equivalent to an embedded replay of
  the same stream, across shard counts and concurrent pipelined clients;
* admission control sheds with structured retries (never by dropping an
  acknowledged write) and the client's shed-suffix resubmission keeps
  digests equal even while shedding;
* a mid-request client disconnect, a mid-write engine crash (armed via
  the crash-matrix fault points), and a server restart all leave the
  store recoverable.
"""

from __future__ import annotations

import hashlib
import socket
import struct
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import acheron_config
from repro.core.engine import AcheronEngine
from repro.server import (
    AdmissionConfig,
    EngineClient,
    EngineServer,
    ErrCode,
    FrameDecoder,
    Op,
    PROTOCOL_VERSION,
    ProtocolError,
    Resp,
    ServerConfig,
    ServerError,
    decode_value,
    encode_frame,
    encode_value,
)
from repro.server.protocol import HEADER_AFTER_LENGTH
from repro.shard.engine import ShardedEngine
from repro.workload.adversarial import build_adversary
from repro.workload.generator import generate_operations
from repro.workload.runner import run_workload
from repro.workload.spec import OpKind, WorkloadSpec

from conftest import TINY

KEY_SPACE = (0, 60_000)


def tiny_engine(directory, shards):
    """A served-or-embedded engine at the test scale."""
    cfg = acheron_config(**TINY)
    if shards == 1:
        return AcheronEngine(cfg, directory=str(directory))
    return ShardedEngine(cfg, directory=str(directory), shards=shards, key_space=KEY_SPACE)


def contents_digest(engine) -> str:
    digest = hashlib.sha256()
    for key, value in engine.scan(0, 10**9):
        digest.update(repr((key, value)).encode())
    return digest.hexdigest()


@pytest.fixture
def served(tmp_path):
    """A started 4-shard server; yields (server, engine, address)."""
    engine = tiny_engine(tmp_path / "store", 4)
    server = EngineServer(engine, ServerConfig(port=0)).start()
    yield server, engine
    server.stop(close_engine=True)


# ---------------------------------------------------------------------------
# value codec
# ---------------------------------------------------------------------------
class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None, True, False, 0, -1, 2**62, -(2**70), 2**200, 1.5, float("inf"),
            "", "text", "unié", b"", b"bytes",
            [1, "two", None], (3, (4, b"5")), {"k": [1, {"n": None}]},
            ("put", 17, "v17", None), [("delete", 3), ("put", 9, "x")],
        ],
    )
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_tuple_and_list_stay_distinct(self):
        assert decode_value(encode_value((1, 2))) == (1, 2)
        assert type(decode_value(encode_value((1, 2)))) is tuple
        assert type(decode_value(encode_value([1, 2]))) is list

    def test_non_str_dict_key_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_value({1: "x"})

    def test_unencodable_type_rejected(self):
        with pytest.raises(ProtocolError):
            encode_value(object())

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            decode_value(encode_value(1) + b"\x00")

    def test_hostile_nesting_rejected(self):
        deep = encode_value(None)
        for _ in range(64):  # hand-roll a 64-deep list: l,count=1,...
            deep = b"l" + struct.pack("<I", 1) + deep
        with pytest.raises(ProtocolError):
            decode_value(deep)

    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(-(2**80), 2**80),
                st.floats(allow_nan=False),
                st.text(max_size=32),
                st.binary(max_size=32),
            ),
            lambda leaf: st.one_of(
                st.lists(leaf, max_size=4),
                st.lists(leaf, max_size=4).map(tuple),
                st.dictionaries(st.text(max_size=8), leaf, max_size=4),
            ),
            max_leaves=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, value):
        assert decode_value(encode_value(value)) == value


# ---------------------------------------------------------------------------
# frame decoder totality
# ---------------------------------------------------------------------------
def feed_in_chunks(decoder: FrameDecoder, data: bytes, cuts: list[int]):
    """Feed ``data`` split at ``cuts``; collect frames after every chunk."""
    frames = []
    positions = sorted({min(c, len(data)) for c in cuts}) + [len(data)]
    start = 0
    for end in positions:
        decoder.feed(data[start:end])
        frames.extend(decoder.drain())
        start = end
    return frames


class TestFrameDecoder:
    def test_roundtrip_byte_at_a_time(self):
        wire = encode_frame(Op.PUT, 7, (1, "v", None), generation=3) + encode_frame(
            Resp.OK, 7, (None, 12.5)
        )
        decoder = FrameDecoder()
        frames = []
        for i in range(len(wire)):
            decoder.feed(wire[i : i + 1])
            frames.extend(decoder.drain())
        assert [f.kind for f in frames] == [Op.PUT, Resp.OK]
        assert frames[0].request_id == 7 and frames[0].generation == 3
        assert frames[0].payload == (1, "v", None)
        assert frames[1].payload == (None, 12.5)

    def test_partial_frame_returns_none(self):
        wire = encode_frame(Op.GET, 1, (5,))
        decoder = FrameDecoder()
        decoder.feed(wire[:-1])
        assert decoder.next_frame() is None
        assert decoder.buffered == len(wire) - 1

    def test_oversized_length_prefix_rejected_without_allocation(self):
        decoder = FrameDecoder(max_frame_bytes=1024)
        decoder.feed(struct.pack("<I", 1 << 30))
        with pytest.raises(ProtocolError, match="oversized"):
            decoder.next_frame()

    def test_bad_magic_rejected(self):
        wire = bytearray(encode_frame(Op.PING, 1, None))
        wire[4] ^= 0xFF
        decoder = FrameDecoder()
        decoder.feed(bytes(wire))
        with pytest.raises(ProtocolError, match="bad_magic"):
            decoder.next_frame()

    def test_bad_version_rejected(self):
        wire = bytearray(encode_frame(Op.PING, 1, None))
        wire[6] = PROTOCOL_VERSION + 1
        decoder = FrameDecoder()
        decoder.feed(bytes(wire))
        with pytest.raises(ProtocolError, match="bad_version"):
            decoder.next_frame()

    def test_corrupt_payload_fails_crc(self):
        wire = bytearray(encode_frame(Op.PUT, 1, (1, "value", None)))
        wire[-1] ^= 0x01
        decoder = FrameDecoder()
        decoder.feed(bytes(wire))
        with pytest.raises(ProtocolError, match="bad_crc"):
            decoder.next_frame()

    def test_poisoned_decoder_stays_poisoned(self):
        decoder = FrameDecoder()
        decoder.feed(struct.pack("<I", 0))  # length below header size
        with pytest.raises(ProtocolError):
            decoder.next_frame()
        with pytest.raises(ProtocolError):
            decoder.feed(encode_frame(Op.PING, 1, None))
        with pytest.raises(ProtocolError):
            decoder.next_frame()

    @given(data=st.binary(max_size=256), cuts=st.lists(st.integers(0, 256), max_size=8))
    @settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_garbage_never_crashes(self, data, cuts):
        """Totality: arbitrary bytes in arbitrary segmentation produce
        frames, None, or ProtocolError -- nothing else, no hang."""
        decoder = FrameDecoder()
        try:
            feed_in_chunks(decoder, data, cuts)
        except ProtocolError:
            pass  # structured rejection is the contract

    @given(
        frames=st.lists(
            st.tuples(
                st.sampled_from(sorted(Op.ALL | Resp.ALL)),
                st.integers(0, 2**32 - 1),
                st.one_of(st.none(), st.integers(-100, 100), st.text(max_size=16)),
            ),
            min_size=1,
            max_size=5,
        ),
        cuts=st.lists(st.integers(0, 512), max_size=6),
    )
    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_valid_streams_survive_any_segmentation(self, frames, cuts):
        wire = b"".join(encode_frame(k, rid, p) for k, rid, p in frames)
        decoded = feed_in_chunks(FrameDecoder(), wire, cuts)
        assert [(f.kind, f.request_id, f.payload) for f in decoded] == frames

    @given(garbage=st.binary(min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_truncation_then_garbage_is_structured(self, garbage):
        """A valid frame, then a truncated tail extended with garbage:
        the first frame parses; the rest errors or waits, never crashes."""
        good = encode_frame(Op.STATS, 9, None)
        tail = encode_frame(Op.PUT, 10, (1, "v", None))[: HEADER_AFTER_LENGTH]
        decoder = FrameDecoder()
        decoder.feed(good + tail)
        assert decoder.next_frame().request_id == 9
        try:
            decoder.feed(garbage)
            while decoder.next_frame() is not None:
                pass
        except ProtocolError:
            pass


# ---------------------------------------------------------------------------
# served == embedded
# ---------------------------------------------------------------------------
def equivalence_spec() -> WorkloadSpec:
    return WorkloadSpec(
        operations=1_200,
        preload=700,
        seed=0xBEEF,
        weights={
            OpKind.INSERT: 0.42,
            OpKind.UPDATE: 0.20,
            OpKind.POINT_DELETE: 0.10,
            OpKind.POINT_QUERY: 0.15,
            OpKind.EMPTY_QUERY: 0.04,
            OpKind.RANGE_QUERY: 0.04,
            OpKind.SECONDARY_RANGE_DELETE: 0.05,
        },
    )


class TestServedEquivalence:
    @pytest.mark.parametrize("shards", [1, 4])
    def test_digest_matches_embedded_replay(self, tmp_path, shards):
        operations = generate_operations(equivalence_spec())
        embedded = tiny_engine(tmp_path / "embedded", shards)
        run_workload(embedded, operations)
        expected = contents_digest(embedded)
        embedded.close()

        engine = tiny_engine(tmp_path / "served", shards)
        server = EngineServer(engine, ServerConfig(port=0)).start()
        try:
            result = run_workload(
                None, operations, connect=server.address, clients=4
            )
            assert result.operations == len(operations)
            assert result.served is not None
            assert len(result.served["latencies_us"]) == len(operations)
            assert contents_digest(engine) == expected
        finally:
            server.stop(close_engine=True)

    def test_eight_pipelined_clients_stay_equivalent(self, tmp_path):
        """The acceptance-criterion shape: >= 8 concurrent clients."""
        spec = WorkloadSpec(operations=1_000, preload=600, seed=3)
        operations = generate_operations(spec)
        embedded = tiny_engine(tmp_path / "embedded", 4)
        run_workload(embedded, operations)
        expected = contents_digest(embedded)
        embedded.close()

        engine = tiny_engine(tmp_path / "served", 4)
        server = EngineServer(engine, ServerConfig(port=0)).start()
        try:
            run_workload(None, operations, connect=server.address, clients=8)
            assert contents_digest(engine) == expected
        finally:
            server.stop(close_engine=True)

    def test_multi_shard_batch_scatters_and_aggregates(self, served):
        server, engine = served
        with EngineClient(server.address) as client:
            applied = client.apply_batch(
                [("put", k, f"v{k}") for k in range(0, 60_000, 5_000)]
                + [("delete", 5_000)]
            )
            assert applied == 13
            assert client.get(10_000) == "v10000"
            assert client.get(5_000, default="MISS") == "MISS"
            report = server.server_report()
            assert report["scatter_batches"] == 1

    def test_cross_shard_scan_runs_as_barrier(self, served):
        server, engine = served
        with EngineClient(server.address) as client:
            client.apply_batch([("put", k, k) for k in range(0, 60_000, 1_000)])
            rows = list(client.scan(0, 59_999))
            assert rows == [(k, k) for k in range(0, 60_000, 1_000)]
            assert server.server_report()["barrier_ops"] >= 1

    def test_stats_over_the_wire_carries_server_section(self, served):
        server, _ = served
        with EngineClient(server.address) as client:
            client.put(123, "x")
            stats = client.stats()
            assert stats["server"]["accepted"] >= 1
            assert stats["server"]["workers"] == 4
            assert "persistence" in stats and "io" in stats

    def test_served_stats_helper_attaches_section(self, served):
        server, _ = served
        stats = server.stats()
        assert stats.server is not None
        assert stats.server["shards"] == 4
        assert stats.to_dict()["server"]["workers"] == 4


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_backpressure_shed_is_structured_retry(self, tmp_path):
        """backpressure_depth=0 treats every shard as stalled: writes shed
        with RETRY_AFTER (bounded client retries then a structured
        error), reads still execute."""
        engine = tiny_engine(tmp_path / "store", 4)
        server = EngineServer(
            engine,
            ServerConfig(
                port=0,
                admission=AdmissionConfig(backpressure_depth=0, retry_after_ms=1.0),
            ),
        ).start()
        try:
            with EngineClient(server.address) as client:
                with client.connection() as conn:
                    conn.max_shed_retries = 3
                    with pytest.raises(ServerError) as excinfo:
                        conn.call(Op.PUT, (1, "v", None))
                    assert excinfo.value.code == ErrCode.RETRY_AFTER
                    # Reads are not write-backpressure: still served.
                    assert conn.call(Op.GET, (1,)).result == (False, None)
            report = server.server_report()
            assert report["shed_backpressure"] > 0
            assert report["engine_errors"] == 0
        finally:
            server.stop(close_engine=True)

    def test_hot_shard_storm_sheds_without_losing_acked_writes(self, tmp_path):
        """The PR7 storm against tight admission: shedding engages (hot
        shard and/or queue caps), nothing crashes, and the shed-suffix
        retry protocol keeps the served contents digest-equal to an
        embedded replay -- i.e. no acknowledged write was lost or
        reordered."""
        operations = build_adversary(
            "hot_shard_storm", seed=0xBAD, preload=768, operations=2_048
        )
        embedded = tiny_engine(tmp_path / "embedded", 4)
        run_workload(embedded, operations)
        expected = contents_digest(embedded)
        embedded.close()

        engine = tiny_engine(tmp_path / "served", 4)
        server = EngineServer(
            engine,
            ServerConfig(
                port=0,
                admission=AdmissionConfig(
                    max_queue_depth=4,
                    hot_tighten=4,
                    hot_window_ops=128,
                    hot_share=0.5,
                    retry_after_ms=1.0,
                ),
            ),
        ).start()
        try:
            result = run_workload(
                None, operations, connect=server.address, clients=2
            )
            report = server.server_report()
            assert report["shed_total"] > 0, "storm should trip admission"
            assert report["hot_windows"] > 0, "storm should flag the hot shard"
            assert result.served["sheds_seen"] > 0
            assert contents_digest(engine) == expected
        finally:
            server.stop(close_engine=True)

    def test_inflight_cap_sheds_and_aborts_suffix(self, served):
        """A raw burst past the per-connection cap: the server sheds with
        RETRY_AFTER and aborts the same-generation suffix; the pooled
        client resubmits and every request eventually succeeds."""
        server, _ = served
        server._adm = AdmissionConfig(max_inflight_per_conn=4, retry_after_ms=1.0)
        with EngineClient(server.address, window=64) as client:
            requests = [(Op.PUT, (k, k, None)) for k in range(64)]
            results = client.pipeline(requests)
            assert all(r is not None for r in results)
        report = server.server_report()
        assert report["shed_inflight"] > 0
        assert report["pipeline_aborts"] > 0


# ---------------------------------------------------------------------------
# failure handling and recovery
# ---------------------------------------------------------------------------
class TestRobustness:
    def test_mid_request_disconnect_leaves_server_healthy(self, served):
        server, engine = served
        with EngineClient(server.address) as client:
            client.put(1, "before")
        # Half a frame, then hang up mid-request.
        raw = socket.create_connection(("127.0.0.1", server.port), timeout=5)
        raw.sendall(encode_frame(Op.PUT, 99, (2, "torn", None))[:11])
        raw.close()
        deadline = time.monotonic() + 5
        while server.server_report()["connections_closed"] < 2:
            assert time.monotonic() < deadline, "reader did not notice the disconnect"
            time.sleep(0.02)
        with EngineClient(server.address) as client:
            assert client.get(1) == "before"
            assert client.get(2, default="MISS") == "MISS"  # torn request never acked

    def test_garbage_stream_gets_structured_goodbye(self, served):
        server, _ = served
        raw = socket.create_connection(("127.0.0.1", server.port), timeout=5)
        raw.sendall(b"\x13\x00\x00\x00 definitely not a frame......")
        decoder = FrameDecoder()
        goodbye = None
        raw.settimeout(5)
        try:
            while goodbye is None:
                data = raw.recv(4096)
                if not data:
                    break
                decoder.feed(data)
                goodbye = decoder.next_frame()
        finally:
            raw.close()
        assert goodbye is not None and goodbye.kind == Resp.ERR
        assert goodbye.payload["code"] == ErrCode.BAD_REQUEST
        assert server.server_report()["protocol_errors"] == 1
        with EngineClient(server.address) as client:  # server survived
            assert client.ping()["protocol"] == PROTOCOL_VERSION

    def test_engine_crash_mid_write_never_acks_the_lost_write(self, tmp_path):
        """Arm a crash-matrix fault point (wal.append) under the served
        engine: the hit write errors structurally instead of acking, the
        server survives, and reopening the store recovers every write
        that WAS acked."""
        from repro.storage import faults as fp
        from repro.storage.faults import FaultInjector

        directory = tmp_path / "store"
        injector = FaultInjector()
        engine = ShardedEngine(
            acheron_config(**TINY),
            directory=str(directory),
            shards=4,
            key_space=KEY_SPACE,
            faults=injector,
        )
        server = EngineServer(engine, ServerConfig(port=0)).start()
        acked = []
        crashed_key = None
        try:
            with EngineClient(server.address) as client:
                for k in range(0, 40):
                    client.put(k, f"v{k}")
                    acked.append(k)
                injector.arm(fp.WAL_APPEND, fp.CRASH)
                with pytest.raises(ServerError) as excinfo:
                    for k in range(40, 400):
                        client.put(k, f"v{k}")
                        acked.append(k)
                crashed_key = acked[-1] + 1
                assert excinfo.value.code == ErrCode.ENGINE_ERROR
                assert client.ping()["shards"] == 4  # server itself survived
            assert server.server_report()["engine_errors"] >= 1
        finally:
            server.stop(close_engine=False)
        # The "process" is gone; recover the store and audit the acks.
        recovered = ShardedEngine(directory=str(directory), degraded_ok=True)
        for k in acked:
            assert recovered.get(k) == f"v{k}", f"acked write {k} lost"
        assert recovered.get(crashed_key) is None  # errored, never acked
        recovered.close()

    def test_server_restart_reserves_the_same_store(self, tmp_path):
        directory = tmp_path / "store"
        engine = tiny_engine(directory, 4)
        server = EngineServer(engine, ServerConfig(port=0)).start()
        with EngineClient(server.address) as client:
            client.apply_batch([("put", k, f"gen1-{k}") for k in range(0, 2_000, 25)])
        server.stop(close_engine=True)

        reopened = ShardedEngine(directory=str(directory))
        second = EngineServer(reopened, ServerConfig(port=0)).start()
        try:
            with EngineClient(second.address) as client:
                assert client.get(25) == "gen1-25"
                client.put(25, "gen2-25")
                assert client.get(25) == "gen2-25"
                assert len(list(client.scan(0, 2_000))) == 80
        finally:
            second.stop(close_engine=True)

    def test_connect_after_stop_is_refused(self, tmp_path):
        engine = tiny_engine(tmp_path / "store", 1)
        server = EngineServer(engine, ServerConfig(port=0)).start()
        with EngineClient(server.address) as client:
            client.put(1, "v")
        server.stop(close_engine=True)
        with pytest.raises(Exception):  # ConnectionLost or refused connect
            with EngineClient(server.address, timeout=2) as client:
                client.get(1)
