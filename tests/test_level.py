"""Unit tests for the Level container (run ordering is load-bearing)."""

import pytest

from repro.config import baseline_config
from repro.lsm.entry import Entry
from repro.lsm.level import Level
from repro.lsm.run import FileIdAllocator, Run, build_files

from conftest import TINY


def make_run(keys, ids=None, seqno_base=0):
    ids = ids or FileIdAllocator()
    entries = [Entry.put(k, f"v{k}", seqno_base + i + 1) for i, k in enumerate(sorted(keys))]
    return Run(build_files(entries, baseline_config(**TINY), ids, 0))


class TestLevel:
    def test_one_based_indexing(self):
        with pytest.raises(ValueError):
            Level(0)
        assert Level(3).index == 3

    def test_empty_level(self):
        level = Level(1)
        assert level.is_empty
        assert level.run_count == 0
        assert level.entry_count == 0
        assert level.page_count == 0
        assert list(level.iter_files()) == []

    def test_newest_run_goes_first(self):
        level = Level(1)
        ids = FileIdAllocator()
        old = make_run(range(10), ids)
        new = make_run(range(10, 20), ids, seqno_base=100)
        level.add_newest_run(old)
        level.add_newest_run(new)
        assert level.runs[0] is new
        assert level.runs[1] is old

    def test_add_oldest_run_appends(self):
        level = Level(1)
        ids = FileIdAllocator()
        first = make_run(range(5), ids)
        second = make_run(range(5, 10), ids, seqno_base=50)
        level.add_newest_run(first)
        level.add_oldest_run(second)
        assert level.runs == [first, second]

    def test_remove_and_replace(self):
        level = Level(1)
        ids = FileIdAllocator()
        a = make_run(range(5), ids)
        b = make_run(range(5, 10), ids, seqno_base=50)
        level.add_newest_run(a)
        level.add_newest_run(b)
        level.remove_run(a)
        assert level.runs == [b]
        c = make_run(range(20, 25), ids, seqno_base=90)
        level.replace_run(b, c)
        assert level.runs == [c]
        level.replace_run(c, None)
        assert level.is_empty

    def test_replace_missing_run_raises(self):
        level = Level(1)
        with pytest.raises(ValueError):
            level.replace_run(make_run(range(3)), None)

    def test_accounting_sums_runs(self):
        level = Level(2)
        ids = FileIdAllocator()
        level.add_newest_run(make_run(range(30), ids))
        level.add_newest_run(make_run(range(100, 120), ids, seqno_base=500))
        assert level.entry_count == 50
        assert level.run_count == 2
        assert len(list(level.iter_files())) == sum(len(r.files) for r in level.runs)

    def test_clear(self):
        level = Level(1)
        level.add_newest_run(make_run(range(5)))
        level.clear()
        assert level.is_empty

    def test_repr_mentions_shape(self):
        level = Level(1)
        level.add_newest_run(make_run(range(5)))
        text = repr(level)
        assert "Level(1" in text and "1 runs" in text
