"""Tests for workload specs, generators, distributions, and the runner."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.distributions import (
    HotspotKeyPicker,
    UniformKeyPicker,
    ZipfianKeyPicker,
    make_key_picker,
)
from repro.workload.generator import KEY_STRIDE, WorkloadGenerator, generate_operations
from repro.workload.runner import run_workload
from repro.workload.spec import Operation, OpKind, WorkloadSpec

from conftest import make_baseline


class TestSpec:
    def test_default_spec_valid(self):
        WorkloadSpec()

    def test_rejects_bad_counts(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(operations=-1)
        with pytest.raises(WorkloadError):
            WorkloadSpec(preload=-1)

    def test_rejects_bad_weights(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(weights={})
        with pytest.raises(WorkloadError):
            WorkloadSpec(weights={OpKind.INSERT: -1.0})
        with pytest.raises(WorkloadError):
            WorkloadSpec(weights={OpKind.INSERT: 0.0})
        with pytest.raises(WorkloadError):
            WorkloadSpec(weights={"insert": 1.0})

    def test_rejects_bad_range_and_window(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(range_span=0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(secondary_delete_window=0.0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(secondary_delete_window=1.5)

    def test_with_delete_fraction_rescales(self):
        spec = WorkloadSpec().with_delete_fraction(0.25)
        weights = spec.weights
        total = sum(weights.values())
        assert weights[OpKind.POINT_DELETE] / total == pytest.approx(0.25)
        # Other kinds keep their relative ratios.
        base = WorkloadSpec().weights
        ratio = weights[OpKind.INSERT] / weights[OpKind.POINT_QUERY]
        base_ratio = base[OpKind.INSERT] / base[OpKind.POINT_QUERY]
        assert ratio == pytest.approx(base_ratio)

    def test_with_delete_fraction_zero_removes_deletes(self):
        spec = WorkloadSpec().with_delete_fraction(0.0)
        assert OpKind.POINT_DELETE not in spec.weights

    def test_with_delete_fraction_bounds(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec().with_delete_fraction(1.0)
        with pytest.raises(WorkloadError):
            WorkloadSpec().with_delete_fraction(-0.1)


class TestDistributions:
    def test_uniform_covers_population(self):
        picker = UniformKeyPicker(np.random.default_rng(1))
        picks = {picker.pick(10) for _ in range(500)}
        assert picks == set(range(10))

    def test_zipfian_is_skewed(self):
        picker = ZipfianKeyPicker(np.random.default_rng(1), theta=0.99)
        picks = [picker.pick(1000) for _ in range(5000)]
        top_decile = sum(1 for p in picks if p < 100)
        assert top_decile > 2000  # far above the uniform expectation of 500

    def test_zipfian_respects_population_bound(self):
        picker = ZipfianKeyPicker(np.random.default_rng(1))
        assert all(0 <= picker.pick(7) < 7 for _ in range(200))

    def test_hotspot_concentrates(self):
        picker = HotspotKeyPicker(
            np.random.default_rng(1), hot_fraction=0.9, hot_set_fraction=0.1
        )
        picks = [picker.pick(1000) for _ in range(5000)]
        hot = sum(1 for p in picks if p < 100)
        assert hot > 4000

    def test_empty_population_rejected(self):
        for picker in (
            UniformKeyPicker(np.random.default_rng(0)),
            ZipfianKeyPicker(np.random.default_rng(0)),
            HotspotKeyPicker(np.random.default_rng(0)),
        ):
            with pytest.raises(WorkloadError):
                picker.pick(0)

    def test_make_key_picker(self):
        rng = np.random.default_rng(0)
        assert isinstance(make_key_picker("uniform", rng), UniformKeyPicker)
        assert isinstance(make_key_picker("zipfian", rng), ZipfianKeyPicker)
        assert isinstance(make_key_picker("hotspot", rng), HotspotKeyPicker)
        with pytest.raises(WorkloadError):
            make_key_picker("gaussian", rng)

    def test_bad_parameters_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(WorkloadError):
            ZipfianKeyPicker(rng, theta=0)
        with pytest.raises(WorkloadError):
            HotspotKeyPicker(rng, hot_fraction=0)
        with pytest.raises(WorkloadError):
            HotspotKeyPicker(rng, hot_set_fraction=2.0)


class TestGenerator:
    def test_preload_is_pure_inserts(self):
        spec = WorkloadSpec(operations=0, preload=100)
        ops = generate_operations(spec)
        assert len(ops) == 100
        assert all(op.kind is OpKind.INSERT for op in ops)
        assert len({op.key for op in ops}) == 100

    def test_total_operation_count(self):
        spec = WorkloadSpec(operations=250, preload=50)
        assert len(generate_operations(spec)) == 300

    def test_determinism(self):
        spec = WorkloadSpec(operations=300, preload=100, seed=7)
        a = generate_operations(spec)
        b = generate_operations(spec)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_operations(WorkloadSpec(operations=300, preload=0, seed=1))
        b = generate_operations(WorkloadSpec(operations=300, preload=0, seed=2))
        assert a != b

    def test_mix_approximates_weights(self):
        spec = WorkloadSpec(
            operations=4000,
            preload=500,
            weights={OpKind.INSERT: 0.5, OpKind.POINT_QUERY: 0.5},
            seed=3,
        )
        gen = WorkloadGenerator(spec)
        list(gen.preload_operations())
        kinds = [op.kind for op in gen.mixed_operations()]
        inserts = kinds.count(OpKind.INSERT)
        assert 0.4 < inserts / len(kinds) < 0.6

    def test_deletes_retire_keys(self):
        spec = WorkloadSpec(
            operations=200,
            preload=100,
            weights={OpKind.POINT_DELETE: 1.0, OpKind.INSERT: 0.001},
            seed=5,
        )
        gen = WorkloadGenerator(spec)
        ops = list(gen.operations())
        deleted = [op.key for op in ops if op.kind is OpKind.POINT_DELETE]
        assert len(deleted) == len(set(deleted))  # never delete twice

    def test_point_queries_target_live_keys(self):
        spec = WorkloadSpec(
            operations=500,
            preload=200,
            weights={OpKind.POINT_QUERY: 0.6, OpKind.POINT_DELETE: 0.4},
            seed=11,
        )
        gen = WorkloadGenerator(spec)
        live = set()
        for op in gen.operations():
            if op.kind is OpKind.INSERT:
                live.add(op.key)
            elif op.kind is OpKind.POINT_DELETE:
                assert op.key in live
                live.discard(op.key)
            elif op.kind is OpKind.POINT_QUERY:
                assert op.key in live

    def test_empty_queries_probe_nonexistent_keys(self):
        spec = WorkloadSpec(
            operations=300,
            preload=100,
            weights={OpKind.EMPTY_QUERY: 0.5, OpKind.INSERT: 0.5},
            seed=13,
        )
        for op in WorkloadGenerator(spec).operations():
            if op.kind is OpKind.EMPTY_QUERY:
                assert op.key % KEY_STRIDE == 1  # off-stride: never inserted

    def test_range_queries_have_bounds(self):
        spec = WorkloadSpec(
            operations=100,
            preload=50,
            weights={OpKind.RANGE_QUERY: 0.5, OpKind.INSERT: 0.5},
            seed=17,
        )
        for op in WorkloadGenerator(spec).operations():
            if op.kind is OpKind.RANGE_QUERY:
                assert op.key_hi > op.key

    def test_live_kinds_degrade_to_insert_when_population_empty(self):
        spec = WorkloadSpec(
            operations=50, preload=0, weights={OpKind.UPDATE: 1.0}, seed=19
        )
        ops = generate_operations(spec)
        assert ops[0].kind is OpKind.INSERT


@pytest.mark.usefixtures("serial_write_path")  # asserts schedule-exact counters
class TestRunner:
    def test_runner_attributes_io_per_kind(self):
        engine = make_baseline()
        spec = WorkloadSpec(operations=600, preload=400, seed=23)
        gen = WorkloadGenerator(spec)
        result = run_workload(engine, gen.operations())
        assert result.operations == 1000
        insert_stats = result.per_kind[OpKind.INSERT]
        assert insert_stats.count > 0
        assert insert_stats.pages_written > 0
        query_stats = result.per_kind.get(OpKind.POINT_QUERY)
        if query_stats is not None:
            assert query_stats.results_returned == query_stats.count  # all hits

    def test_empty_queries_return_nothing(self):
        engine = make_baseline()
        spec = WorkloadSpec(
            operations=200,
            preload=300,
            weights={OpKind.EMPTY_QUERY: 0.5, OpKind.INSERT: 0.5},
            seed=29,
        )
        result = run_workload(engine, WorkloadGenerator(spec).operations())
        assert result.per_kind[OpKind.EMPTY_QUERY].results_returned == 0

    def test_secondary_range_delete_op(self):
        engine = make_baseline()
        ops = [Operation(OpKind.INSERT, key=k, value=k) for k in range(200)]
        ops.append(Operation(OpKind.SECONDARY_RANGE_DELETE))
        result = run_workload(engine, ops, secondary_delete_window=0.5)
        deleted = result.per_kind[OpKind.SECONDARY_RANGE_DELETE].results_returned
        assert deleted > 0
        assert engine.get(0) is None  # oldest insert fell in the window

    def test_modeled_throughput(self):
        engine = make_baseline()
        spec = WorkloadSpec(operations=100, preload=100, seed=31)
        result = run_workload(engine, WorkloadGenerator(spec).operations())
        assert result.modeled_throughput_ops_per_s() > 0
        assert result.total_modeled_us > 0
        assert result.wall_seconds > 0


class TestResurrections:
    def _spec(self, fraction):
        return WorkloadSpec(
            operations=600,
            preload=200,
            weights={
                OpKind.INSERT: 0.4,
                OpKind.POINT_DELETE: 0.4,
                OpKind.POINT_QUERY: 0.2,
            },
            reinsert_fraction=fraction,
            seed=41,
        )

    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(reinsert_fraction=-0.1)
        with pytest.raises(WorkloadError):
            WorkloadSpec(reinsert_fraction=1.1)

    def test_zero_fraction_never_reuses_keys(self):
        ops = generate_operations(self._spec(0.0))
        inserted = [op.key for op in ops if op.kind is OpKind.INSERT]
        assert len(inserted) == len(set(inserted))

    def test_positive_fraction_resurrects_deleted_keys(self):
        ops = generate_operations(self._spec(0.8))
        deleted: set[int] = set()
        resurrections = 0
        for op in ops:
            if op.kind is OpKind.POINT_DELETE:
                deleted.add(op.key)
            elif op.kind is OpKind.INSERT and op.key in deleted:
                resurrections += 1
                deleted.discard(op.key)
        assert resurrections > 0

    def test_resurrections_supersede_tombstones(self):
        from conftest import make_acheron

        engine = make_acheron(delete_persistence_threshold=10**6)
        result = run_workload(engine, generate_operations(self._spec(0.8)))
        assert engine.tracker.superseded_count > 0

    def test_stream_stays_deterministic(self):
        assert generate_operations(self._spec(0.5)) == generate_operations(self._spec(0.5))

    def test_with_delete_fraction_preserves_reinsert(self):
        spec = self._spec(0.3).with_delete_fraction(0.1)
        assert spec.reinsert_fraction == 0.3


class TestTraces:
    def _ops(self):
        spec = WorkloadSpec(
            operations=300,
            preload=100,
            weights={
                OpKind.INSERT: 0.4,
                OpKind.UPDATE: 0.15,
                OpKind.POINT_DELETE: 0.15,
                OpKind.POINT_QUERY: 0.15,
                OpKind.EMPTY_QUERY: 0.05,
                OpKind.RANGE_QUERY: 0.05,
                OpKind.SECONDARY_RANGE_DELETE: 0.05,
            },
            seed=61,
        )
        return generate_operations(spec)

    def test_roundtrip(self, tmp_path):
        from repro.workload.trace import load_trace, record_trace

        ops = self._ops()
        path = tmp_path / "ops.trace"
        assert record_trace(ops, path) == len(ops)
        assert load_trace(path) == ops

    def test_string_keys_and_values_survive(self, tmp_path):
        from repro.workload.trace import load_trace, record_trace

        ops = [
            Operation(OpKind.INSERT, key="user name:1", value="a value with spaces\nand newline"),
            Operation(OpKind.POINT_QUERY, key="user name:1"),
            Operation(OpKind.RANGE_QUERY, key="a", key_hi="z"),
        ]
        path = tmp_path / "s.trace"
        record_trace(ops, path)
        assert load_trace(path) == ops

    def test_empty_trace(self, tmp_path):
        from repro.workload.trace import load_trace, record_trace

        path = tmp_path / "empty.trace"
        record_trace([], path)
        assert load_trace(path) == []

    def test_not_a_trace_rejected(self, tmp_path):
        from repro.errors import CorruptionError
        from repro.workload.trace import load_trace

        path = tmp_path / "junk"
        path.write_text("hello world")
        with pytest.raises(CorruptionError):
            load_trace(path)

    def test_truncation_detected(self, tmp_path):
        from repro.errors import CorruptionError
        from repro.workload.trace import load_trace, record_trace

        path = tmp_path / "t.trace"
        record_trace(self._ops(), path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-5]) + "\n")
        with pytest.raises(CorruptionError):
            load_trace(path)

    def test_edit_detected(self, tmp_path):
        from repro.errors import CorruptionError
        from repro.workload.trace import load_trace, record_trace

        path = tmp_path / "t.trace"
        record_trace(self._ops(), path)
        path.write_text(path.read_text().replace("put 0 ", "put 9 ", 1))
        with pytest.raises(CorruptionError):
            load_trace(path)

    def test_unsupported_value_type_rejected(self, tmp_path):
        from repro.workload.trace import record_trace

        with pytest.raises(WorkloadError):
            record_trace([Operation(OpKind.INSERT, key=1, value=3.14)], tmp_path / "x")

    def test_replay_produces_identical_engine_state(self, tmp_path):
        from repro.workload.trace import load_trace, record_trace

        ops = self._ops()
        path = tmp_path / "replay.trace"
        record_trace(ops, path)
        live = make_baseline()
        replayed = make_baseline()
        run_workload(live, ops)
        run_workload(replayed, load_trace(path))
        assert dict(live.scan(-1, 10**12)) == dict(replayed.scan(-1, 10**12))
