"""Tests for retention-based deletion (the second delete class of the
deletion-compliance framework)."""

import pytest

from repro.core.retention import RetentionPolicy
from repro.errors import AcheronError

from conftest import make_acheron, make_baseline


class TestRetentionPolicy:
    def test_validation(self):
        engine = make_acheron()
        with pytest.raises(AcheronError):
            RetentionPolicy(engine, window=0, period=10)
        with pytest.raises(AcheronError):
            RetentionPolicy(engine, window=10, period=0)

    def test_not_due_is_a_noop(self):
        engine = make_acheron()
        policy = RetentionPolicy(engine, window=1_000, period=100)
        engine.put(1, "x")
        assert policy.maybe_purge() is None
        assert policy.audit_log == []

    def test_purges_only_expired_entries(self):
        engine = make_acheron(delete_persistence_threshold=10**6)
        policy = RetentionPolicy(engine, window=500, period=100)
        for k in range(1_000):
            engine.put(k, f"v{k}")
        report = policy.maybe_purge()
        assert report is not None
        horizon = policy.audit_log[0].horizon
        # Everything older than the horizon is gone, the rest retained.
        assert engine.get(0) is None
        assert engine.get(horizon - 2) is None
        assert engine.get(999) == "v999"
        survivors = dict(engine.scan(0, 10**9))
        assert all(k >= horizon - 1 for k in survivors)

    def test_period_schedules_next_purge(self):
        engine = make_acheron()
        policy = RetentionPolicy(engine, window=300, period=200)
        for k in range(400):
            engine.put(k, k)
        assert policy.maybe_purge() is not None
        due_after_first = policy.next_due_tick
        assert due_after_first == engine.clock.now() + 200
        assert policy.maybe_purge() is None  # not due again yet
        for k in range(400, 700):
            engine.put(k, k)
        assert policy.maybe_purge() is not None

    def test_audit_log_accumulates(self):
        engine = make_acheron()
        policy = RetentionPolicy(engine, window=200, period=150)
        total = 0
        for k in range(1_200):
            engine.put(k, k)
            report = policy.maybe_purge()
            if report is not None:
                total += report.entries_deleted + report.memtable_entries_deleted
        assert len(policy.audit_log) >= 3
        assert policy.total_purged() == total
        ticks = [r.tick for r in policy.audit_log]
        assert ticks == sorted(ticks)

    def test_compliance_bound(self):
        engine = make_acheron()
        policy = RetentionPolicy(engine, window=400, period=100)
        assert policy.oldest_possible_entry_age() == 500
        # Drive a long workload purging on schedule; at every purge point
        # nothing older than window+period may survive on disk.
        for k in range(2_000):
            engine.put(k, k)
            report = policy.maybe_purge()
            if report is not None:
                now = engine.clock.now()
                for level in engine.tree.iter_levels():
                    for run in level.runs:
                        for entry in run.iter_all_entries():
                            if entry.is_put:
                                age = now - entry.delete_key
                                assert age <= policy.oldest_possible_entry_age()

    def test_works_on_classic_layout_via_full_rewrite(self):
        engine = make_baseline()
        policy = RetentionPolicy(engine, window=300, period=200, method="full_rewrite")
        for k in range(800):
            engine.put(k, k)
        report = policy.maybe_purge()
        assert report is not None
        assert report.method == "full_rewrite"
        assert engine.get(0) is None

    def test_purge_now_is_unconditional(self):
        engine = make_acheron()
        for k in range(100):
            engine.put(k, k)
        policy = RetentionPolicy(engine, window=50, period=10**9)
        report = policy.purge_now()
        assert report.entries_deleted + report.memtable_entries_deleted > 0


class TestMonkeyBloomAllocation:
    def test_bits_decrease_with_depth(self):
        from repro.config import baseline_config

        config = baseline_config(bloom_allocation="monkey", size_ratio=4)
        bits = [config.bloom_bits_for_level(i) for i in range(1, 6)]
        assert bits == sorted(bits, reverse=True)
        assert bits[0] == config.bloom_bits_per_key

    def test_uniform_is_flat(self):
        from repro.config import baseline_config

        config = baseline_config()
        assert config.bloom_bits_for_level(1) == config.bloom_bits_for_level(5)

    def test_invalid_allocation_rejected(self):
        from repro.config import baseline_config
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            baseline_config(bloom_allocation="optimal")

    def test_monkey_saves_filter_memory(self):
        # trivial_moves=False so every descent rebuilds the file at its
        # destination level (a trivially moved file legitimately keeps its
        # original, larger filter).
        monkey = make_baseline(bloom_allocation="monkey", trivial_moves=False)
        uniform = make_baseline(trivial_moves=False)
        for engine in (monkey, uniform):
            for k in range(2_000):
                engine.put(k, k)
            engine.flush()

        def filter_bytes(engine):
            return sum(
                f.bloom.size_bytes
                for lvl in engine.tree.iter_levels()
                for f in lvl.iter_files()
            )

        assert filter_bytes(monkey) < filter_bytes(uniform)

    def test_monkey_keeps_reads_correct(self):
        engine = make_baseline(bloom_allocation="monkey")
        for k in range(1_500):
            engine.put(k, f"v{k}")
        for k in range(0, 1_500, 97):
            assert engine.get(k) == f"v{k}"
        assert engine.get(10**9) is None

    def test_monkey_survives_restart(self, tmp_path):
        from repro.config import baseline_config
        from repro.lsm.tree import LSMTree

        from conftest import TINY

        config = baseline_config(bloom_allocation="monkey", **TINY)
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(500):
                tree.put(k, k)
        reopened = LSMTree.open(None, tmp_path)  # config from manifest
        assert reopened.config.bloom_allocation == "monkey"
        assert reopened.get(123) == 123
