"""Unit tests for basic LSM-tree semantics (put/get/delete/scan/flush)."""

import pytest

from repro.config import baseline_config
from repro.errors import EngineClosedError
from repro.lsm.tree import LSMTree

from conftest import TINY


def make_tree(**overrides):
    params = dict(TINY)
    params.update(overrides)
    return LSMTree(baseline_config(**params))


class TestPointOps:
    def test_get_from_memtable(self):
        tree = make_tree()
        tree.put(1, "one")
        assert tree.get(1) == "one"

    def test_get_missing_returns_default(self):
        tree = make_tree()
        assert tree.get(404) is None
        assert tree.get(404, default="fallback") == "fallback"

    def test_update_replaces_value(self):
        tree = make_tree()
        tree.put(1, "old")
        tree.put(1, "new")
        assert tree.get(1) == "new"

    def test_get_spans_flushed_data(self):
        tree = make_tree()
        for k in range(200):
            tree.put(k, f"v{k}")
        assert tree.flush_count > 0
        for k in (0, 63, 64, 150, 199):
            assert tree.get(k) == f"v{k}"

    def test_delete_hides_key_immediately(self):
        tree = make_tree()
        tree.put(1, "one")
        tree.delete(1)
        assert tree.get(1) is None
        assert not tree.contains(1)

    def test_delete_hides_flushed_data(self):
        tree = make_tree()
        for k in range(200):
            tree.put(k, f"v{k}")
        tree.delete(100)
        assert tree.get(100) is None

    def test_put_after_delete_resurrects(self):
        tree = make_tree()
        tree.put(1, "one")
        tree.delete(1)
        tree.put(1, "again")
        assert tree.get(1) == "again"

    def test_delete_of_nonexistent_key_is_harmless(self):
        tree = make_tree()
        tree.delete(999)
        assert tree.get(999) is None

    def test_newest_version_wins_across_levels(self):
        tree = make_tree()
        for round_no in range(4):
            for k in range(100):
                tree.put(k, f"r{round_no}")
        for k in range(0, 100, 7):
            assert tree.get(k) == "r3"

    def test_contains(self):
        tree = make_tree()
        tree.put(1, "x")
        assert tree.contains(1)
        assert not tree.contains(2)


class TestScan:
    def test_scan_ordered_inclusive(self):
        tree = make_tree()
        for k in range(0, 50, 2):
            tree.put(k, k)
        assert [k for k, _ in tree.scan(10, 20)] == [10, 12, 14, 16, 18, 20]

    def test_scan_spans_memtable_and_disk(self):
        tree = make_tree()
        for k in range(0, 300, 2):
            tree.put(k, "disk")
        tree.put(151, "mem")  # odd key only in the memtable
        keys = [k for k, _ in tree.scan(148, 154)]
        assert keys == [148, 150, 151, 152, 154]

    def test_scan_skips_deleted(self):
        tree = make_tree()
        for k in range(20):
            tree.put(k, k)
        for k in range(5, 10):
            tree.delete(k)
        assert [k for k, _ in tree.scan(0, 19)] == [0, 1, 2, 3, 4] + list(range(10, 20))

    def test_scan_returns_newest_values(self):
        tree = make_tree()
        for k in range(100):
            tree.put(k, "old")
        for k in range(100):
            tree.put(k, "new")
        assert all(v == "new" for _, v in tree.scan(0, 99))

    def test_scan_limit(self):
        tree = make_tree()
        for k in range(50):
            tree.put(k, k)
        assert len(list(tree.scan(0, 49, limit=7))) == 7

    def test_empty_scan(self):
        tree = make_tree()
        assert list(tree.scan(0, 100)) == []


class TestFlushAndShape:
    def test_flush_on_capacity(self):
        tree = make_tree(memtable_entries=16)
        for k in range(16):
            tree.put(k, k)
        assert tree.flush_count == 1
        assert len(tree.memtable) == 0

    def test_manual_flush(self):
        tree = make_tree()
        tree.put(1, "x")
        tree.flush()
        assert len(tree.memtable) == 0
        assert tree.entry_count_on_disk == 1
        tree.flush()  # no-op on empty
        assert tree.flush_count == 1

    def test_leveling_keeps_one_run_per_level(self):
        tree = make_tree()
        for k in range(2000):
            tree.put(k, k)
        for level in tree.iter_levels():
            assert level.run_count <= 1

    def test_level_sizes_respect_capacity_after_maintenance(self):
        tree = make_tree()
        for k in range(2000):
            tree.put(k, k)
        for level in tree.iter_levels():
            if not level.is_empty:
                assert level.entry_count <= tree.config.level_capacity_entries(level.index)

    def test_deepest_nonempty_level(self):
        tree = make_tree()
        assert tree.deepest_nonempty_level() == 0
        for k in range(500):
            tree.put(k, k)
        assert tree.deepest_nonempty_level() >= 2

    def test_clock_ticks_once_per_ingest(self):
        tree = make_tree()
        for k in range(10):
            tree.put(k, k)
        tree.delete(0)
        assert tree.clock.now() == 11
        tree.get(5)  # reads do not advance time
        assert tree.clock.now() == 11

    def test_counters(self):
        tree = make_tree()
        tree.put(1, "x")
        tree.put(2, "y")
        tree.delete(1)
        tree.get(1)
        tree.get(2)
        list(tree.scan(0, 10))
        c = tree.counters
        assert c["puts"] == 2
        assert c["deletes"] == 1
        assert c["gets"] == 2
        assert c["gets_found"] == 1
        assert c["scans"] == 1
        assert c["ingested_bytes"] > 0

    def test_full_compaction_collapses_to_single_run(self):
        tree = make_tree()
        for k in range(1000):
            tree.put(k, k)
        for k in range(0, 1000, 3):
            tree.delete(k)
        tree.full_compaction()
        nonempty = [lvl for lvl in tree.iter_levels() if not lvl.is_empty]
        assert len(nonempty) == 1
        assert nonempty[0].run_count == 1
        assert tree.tombstone_count_on_disk == 0  # all purged
        assert tree.get(3) is None
        assert tree.get(1) == 1

    def test_full_compaction_on_empty_tree(self):
        tree = make_tree()
        assert tree.full_compaction() is None

    def test_invariants_hold_after_heavy_mixed_load(self):
        tree = make_tree()
        for k in range(1500):
            tree.put(k % 311, k)
            if k % 5 == 0:
                tree.delete((k * 7) % 311)
        tree.check_invariants()


class TestLifecycle:
    def test_operations_after_close_raise(self):
        tree = make_tree()
        tree.put(1, "x")
        tree.close()
        with pytest.raises(EngineClosedError):
            tree.put(2, "y")
        with pytest.raises(EngineClosedError):
            tree.get(1)
        with pytest.raises(EngineClosedError):
            tree.flush()

    def test_close_is_idempotent(self):
        tree = make_tree()
        tree.close()
        tree.close()

    def test_context_manager(self):
        with make_tree() as tree:
            tree.put(1, "x")
        with pytest.raises(EngineClosedError):
            tree.get(1)

    def test_advance_time_moves_clock(self):
        tree = make_tree()
        tree.advance_time(100)
        assert tree.clock.now() == 100


class TestReverseScan:
    def _loaded(self, n=600):
        tree = make_tree()
        for k in range(n):
            tree.put(k, f"v{k}")
        for k in range(0, n, 5):
            tree.delete(k)
        tree.put(n + 50, "mem-only")
        return tree

    def test_reverse_equals_reversed_forward(self):
        tree = self._loaded()
        forward = list(tree.scan(0, 10_000))
        backward = list(tree.scan(0, 10_000, reverse=True))
        assert backward == list(reversed(forward))

    def test_reverse_limit_takes_topmost(self):
        tree = self._loaded()
        top3 = list(tree.scan(0, 10_000, limit=3, reverse=True))
        assert [k for k, _ in top3] == [650, 599, 598]

    def test_reverse_bounds_inclusive(self):
        tree = make_tree()
        for k in range(20):
            tree.put(k, k)
        assert [k for k, _ in tree.scan(5, 9, reverse=True)] == [9, 8, 7, 6, 5]

    def test_reverse_skips_deleted_and_sees_newest(self):
        tree = make_tree()
        for k in range(300):
            tree.put(k, "old")
        for k in range(300):
            tree.put(k, "new")
        tree.delete(150)
        rows = dict(tree.scan(140, 160, reverse=True))
        assert 150 not in rows
        assert all(v == "new" for v in rows.values())

    def test_reverse_empty_range(self):
        tree = self._loaded(100)
        assert list(tree.scan(10_000, 20_000, reverse=True)) == []

    def test_reverse_with_kiwi_weave(self):
        from conftest import make_acheron

        engine = make_acheron(pages_per_tile=4)
        n = 500
        for k in range(n):
            engine.put((k * 37) % n, f"v{k}")
        forward = list(engine.scan(0, n))
        assert list(engine.scan(0, n, reverse=True)) == list(reversed(forward))

    def test_reverse_with_tiering(self):
        from repro.config import CompactionStyle

        tree = make_tree(policy=CompactionStyle.TIERING)
        for k in range(800):
            tree.put(k % 211, k)
        forward = list(tree.scan(0, 1000))
        assert list(tree.scan(0, 1000, reverse=True)) == list(reversed(forward))
