"""Unit tests for the memtable (write buffer)."""

import pytest

from repro.lsm.entry import Entry
from repro.lsm.memtable import Memtable


def put(key, seqno, t=0):
    return Entry.put(key, f"v{key}@{seqno}", seqno, write_time=t)


def tomb(key, seqno, t=0):
    return Entry.tombstone(key, seqno, write_time=t)


class TestBasics:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            Memtable(0)

    def test_add_and_get(self):
        mt = Memtable(10)
        mt.add(put(1, 1))
        assert mt.get(1).value == "v1@1"
        assert mt.get(2) is None
        assert 1 in mt
        assert len(mt) == 1

    def test_newer_write_replaces_older(self):
        mt = Memtable(10)
        mt.add(put(1, 1))
        mt.add(put(1, 2))
        assert mt.get(1).seqno == 2
        assert len(mt) == 1

    def test_tombstone_is_stored_and_returned(self):
        mt = Memtable(10)
        mt.add(put(1, 1))
        mt.add(tomb(1, 2))
        entry = mt.get(1)
        assert entry.is_tombstone
        assert mt.tombstone_count == 1

    def test_put_over_tombstone_clears_tombstone_count(self):
        mt = Memtable(10)
        mt.add(tomb(1, 1))
        mt.add(put(1, 2))
        assert mt.tombstone_count == 0
        assert mt.get(1).is_put

    def test_tombstone_over_tombstone_counts_once(self):
        mt = Memtable(10)
        mt.add(tomb(1, 1))
        mt.add(tomb(1, 2))
        assert mt.tombstone_count == 1

    def test_is_full_at_capacity(self):
        mt = Memtable(2)
        mt.add(put(1, 1))
        assert not mt.is_full
        mt.add(put(2, 2))
        assert mt.is_full

    def test_updates_do_not_consume_capacity(self):
        mt = Memtable(2)
        for seqno in range(5):
            mt.add(put(1, seqno))
        assert not mt.is_full

    def test_iteration_is_key_ordered(self):
        mt = Memtable(10)
        for key in [5, 1, 3]:
            mt.add(put(key, key))
        assert [e.key for e in mt] == [1, 3, 5]

    def test_range_is_inclusive(self):
        mt = Memtable(10)
        for key in range(10):
            mt.add(put(key, key))
        assert [e.key for e in mt.range(2, 4)] == [2, 3, 4]


class TestFlushSupport:
    def test_drain_returns_ordered_entries_and_resets(self):
        mt = Memtable(10)
        for key in [4, 2, 9]:
            mt.add(put(key, key))
        mt.add(tomb(2, 100))
        drained = mt.drain()
        assert [e.key for e in drained] == [2, 4, 9]
        assert drained[0].is_tombstone
        assert mt.is_empty
        assert mt.tombstone_count == 0
        assert mt.first_tombstone_time is None

    def test_first_tombstone_time_records_earliest(self):
        mt = Memtable(10)
        assert mt.first_tombstone_time is None
        mt.add(put(1, 1, t=5))
        assert mt.first_tombstone_time is None
        mt.add(tomb(2, 2, t=7))
        mt.add(tomb(3, 3, t=9))
        assert mt.first_tombstone_time == 7

    def test_first_tombstone_time_is_conservative_after_replacement(self):
        # The tracked time survives the tombstone being overwritten by a
        # put: FADE may flush early but never late.
        mt = Memtable(10)
        mt.add(tomb(1, 1, t=3))
        mt.add(put(1, 2, t=4))
        assert mt.first_tombstone_time == 3
        assert mt.tombstone_count == 0

    def test_oldest_tombstone_time_scans_live_entries(self):
        mt = Memtable(10)
        mt.add(tomb(1, 1, t=3))
        mt.add(tomb(2, 2, t=8))
        mt.add(put(1, 3, t=9))  # replaces the t=3 tombstone
        assert mt.oldest_tombstone_time() == 8
        mt.add(put(2, 4, t=10))
        assert mt.oldest_tombstone_time() is None
