"""Tests for the fault-injection layer and the storage code under fire:
the injector's own semantics, then FileStore/WAL behaviour at each
armed transition (crash-atomic publication, bounded retry, torn writes)."""

import pytest

from repro.errors import CorruptionError, StorageError
from repro.lsm.entry import Entry
from repro.storage import faults as fp
from repro.storage.faults import FaultInjector, SimulatedCrash, retry_transient
from repro.storage.filestore import FileStore
from repro.storage.wal import WriteAheadLog


def entries(n, start_seqno=1):
    return [Entry.put(f"k{i}", f"v{i}", start_seqno + i, i, i) for i in range(n)]


class TestInjectorSemantics:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("no.such.point", fp.CRASH)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().arm(fp.WAL_APPEND, "meteor")

    def test_crash_fires_once_per_visit(self):
        inj = FaultInjector()
        inj.arm(fp.WAL_APPEND, fp.CRASH)
        with pytest.raises(SimulatedCrash) as exc:
            inj.fire(fp.WAL_APPEND)
        assert exc.value.point == fp.WAL_APPEND
        assert inj.fired_count(fp.WAL_APPEND) == 1

    def test_after_delays_the_fault(self):
        inj = FaultInjector()
        inj.arm(fp.WAL_APPEND, fp.CRASH, after=2)
        inj.fire(fp.WAL_APPEND)  # visit 1: quiet
        inj.fire(fp.WAL_APPEND)  # visit 2: quiet
        with pytest.raises(SimulatedCrash):
            inj.fire(fp.WAL_APPEND)

    def test_transient_clears_after_times(self):
        inj = FaultInjector()
        inj.arm(fp.MANIFEST_RENAME, fp.IO_ERROR, times=2)
        for _ in range(2):
            with pytest.raises(OSError):
                inj.fire(fp.MANIFEST_RENAME)
        inj.fire(fp.MANIFEST_RENAME)  # third visit: the device recovered

    def test_enospc_carries_the_errno(self):
        import errno

        inj = FaultInjector()
        inj.arm(fp.SSTABLE_WRITE, fp.ENOSPC)
        with pytest.raises(OSError) as exc:
            inj.fire(fp.SSTABLE_WRITE)
        assert exc.value.errno == errno.ENOSPC

    def test_torn_truncates_and_requests_crash(self):
        inj = FaultInjector()
        inj.arm(fp.WAL_APPEND, fp.TORN, at_byte=3)
        inj.fire(fp.WAL_APPEND)  # the instrumented site always fires first
        payload, crash_after = inj.mangle(fp.WAL_APPEND, b"0123456789")
        assert payload == b"012"
        assert crash_after

    def test_bitflip_changes_exactly_one_bit_and_disarms(self):
        inj = FaultInjector(seed=7)
        inj.arm(fp.SSTABLE_WRITE, fp.BITFLIP)
        data = bytes(range(64))
        inj.fire(fp.SSTABLE_WRITE)
        flipped, crash_after = inj.mangle(fp.SSTABLE_WRITE, data)
        assert not crash_after
        diff = [(a ^ b) for a, b in zip(data, flipped)]
        assert sum(bin(d).count("1") for d in diff) == 1
        # One flip only: a retry must not re-corrupt (or un-corrupt).
        inj.fire(fp.SSTABLE_WRITE)
        again, _ = inj.mangle(fp.SSTABLE_WRITE, data)
        assert again == data

    def test_bitflip_deterministic_under_seed(self):
        outs = []
        for _ in range(2):
            inj = FaultInjector(seed=99)
            inj.arm(fp.SSTABLE_WRITE, fp.BITFLIP)
            inj.fire(fp.SSTABLE_WRITE)
            outs.append(inj.mangle(fp.SSTABLE_WRITE, bytes(range(32)))[0])
        assert outs[0] == outs[1]

    def test_fsync_drop_denies_fsync(self):
        inj = FaultInjector()
        inj.arm(fp.WAL_FSYNC, fp.FSYNC_DROP)
        assert not inj.allows_fsync(fp.WAL_FSYNC)
        assert inj.allows_fsync(fp.MANIFEST_FSYNC)  # other points untouched

    def test_registry_covers_every_declared_point(self):
        # Every constant used by the storage layer must be registered.
        for point in (
            fp.SSTABLE_WRITE, fp.SSTABLE_FSYNC, fp.SSTABLE_RENAME,
            fp.SSTABLE_DIRSYNC, fp.SSTABLE_DELETE, fp.MANIFEST_WRITE,
            fp.MANIFEST_FSYNC, fp.MANIFEST_RENAME, fp.MANIFEST_DIRSYNC,
            fp.WAL_APPEND, fp.WAL_FSYNC, fp.WAL_ROTATE_WRITE,
            fp.WAL_ROTATE_RENAME, fp.WAL_ROTATE_DIRSYNC,
        ):
            assert point in fp.FAULT_POINTS
            kinds = fp.kinds_for_point(point)
            assert kinds and fp.CRASH in kinds


class TestRetryTransient:
    def test_returns_value_on_success(self):
        assert retry_transient(lambda: 42, "answer") == 42

    def test_retries_through_transient_oserror(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        assert retry_transient(flaky, "flaky device") == "ok"
        assert calls["n"] == 3

    def test_exhaustion_raises_storage_error(self):
        def broken():
            raise OSError("still dead")

        with pytest.raises(StorageError, match="after"):
            retry_transient(broken, "dead device")

    def test_simulated_crash_is_never_retried(self):
        calls = {"n": 0}

        def crashing():
            calls["n"] += 1
            raise SimulatedCrash(fp.WAL_APPEND)

        with pytest.raises(SimulatedCrash):
            retry_transient(crashing, "crashing device")
        assert calls["n"] == 1


class TestFileStoreUnderFaults:
    def manifest(self, seqno=5):
        return {"levels": [], "next_file_id": 1, "seqno": seqno, "clock": 10}

    def test_crash_before_rename_keeps_old_manifest(self, tmp_path):
        inj = FaultInjector()
        store = FileStore(tmp_path, faults=inj)
        store.write_manifest(self.manifest(seqno=1))
        inj.arm(fp.MANIFEST_RENAME, fp.CRASH)
        with pytest.raises(SimulatedCrash):
            store.write_manifest(self.manifest(seqno=2))
        # The old manifest survives intact; the attempt left only a temp.
        fresh = FileStore(tmp_path)
        assert fresh.read_manifest()["seqno"] == 1
        assert fresh.temp_files()

    def test_torn_manifest_write_never_published(self, tmp_path):
        inj = FaultInjector()
        store = FileStore(tmp_path, faults=inj)
        store.write_manifest(self.manifest(seqno=1))
        inj.arm(fp.MANIFEST_WRITE, fp.TORN)
        with pytest.raises(SimulatedCrash):
            store.write_manifest(self.manifest(seqno=2))
        assert FileStore(tmp_path).read_manifest()["seqno"] == 1

    def test_crash_before_sstable_rename_leaves_no_sstable(self, tmp_path):
        inj = FaultInjector()
        store = FileStore(tmp_path, faults=inj)
        inj.arm(fp.SSTABLE_RENAME, fp.CRASH)
        with pytest.raises(SimulatedCrash):
            store.write_sstable(7, [[[]]], {})
        assert store.list_sstable_ids() == []
        swept = FileStore(tmp_path).clean_temp_files()
        assert swept  # startup removes the orphan temp
        assert FileStore(tmp_path).temp_files() == []

    def test_transient_io_error_is_retried_to_success(self, tmp_path):
        inj = FaultInjector()
        store = FileStore(tmp_path, faults=inj)
        inj.arm(fp.MANIFEST_RENAME, fp.IO_ERROR, times=2)
        store.write_manifest(self.manifest(seqno=3))  # must not raise
        assert FileStore(tmp_path).read_manifest()["seqno"] == 3
        assert inj.fired_count(fp.MANIFEST_RENAME) == 2

    def test_persistent_io_error_exhausts_to_storage_error(self, tmp_path):
        inj = FaultInjector()
        store = FileStore(tmp_path, faults=inj)
        inj.arm(fp.MANIFEST_RENAME, fp.IO_ERROR, times=10_000)
        with pytest.raises(StorageError, match="attempts"):
            store.write_manifest(self.manifest())

    def test_bitflipped_sstable_fails_checksum_on_read(self, tmp_path):
        inj = FaultInjector(seed=3)
        store = FileStore(tmp_path, faults=inj)
        inj.arm(fp.SSTABLE_WRITE, fp.BITFLIP)
        store.write_sstable(1, [[[]]], {"created_at": 0})
        fresh = FileStore(tmp_path)
        with pytest.raises(CorruptionError):
            fresh.read_sstable(1)
        with pytest.raises(CorruptionError):
            fresh.checksum_sstable(1)

    def test_fsync_drop_is_logically_invisible(self, tmp_path):
        inj = FaultInjector()
        store = FileStore(tmp_path, faults=inj)
        inj.arm(fp.MANIFEST_FSYNC, fp.FSYNC_DROP)
        store.write_manifest(self.manifest(seqno=9))
        assert FileStore(tmp_path).read_manifest()["seqno"] == 9

    def test_crash_on_delete_leaves_file_for_gc(self, tmp_path):
        inj = FaultInjector()
        store = FileStore(tmp_path, faults=inj)
        store.write_sstable(4, [[[]]], {})
        inj.arm(fp.SSTABLE_DELETE, fp.CRASH)
        with pytest.raises(SimulatedCrash):
            store.delete_sstable(4)
        assert 4 in FileStore(tmp_path).list_sstable_ids()
        FileStore(tmp_path).garbage_collect(live_file_ids=set())
        assert FileStore(tmp_path).list_sstable_ids() == []


class TestWalUnderFaults:
    def test_torn_append_loses_only_the_torn_record(self, tmp_path):
        inj = FaultInjector()
        wal = WriteAheadLog(tmp_path / "wal.log", faults=inj)
        batch = entries(5)
        for e in batch[:4]:
            wal.append(e)
        inj.arm(fp.WAL_APPEND, fp.TORN, at_byte=6)
        with pytest.raises(SimulatedCrash):
            wal.append(batch[4])
        wal.close()
        survived = list(WriteAheadLog.replay(tmp_path / "wal.log"))
        assert [e.key for e in survived] == [e.key for e in batch[:4]]

    def test_crash_during_rotation_keeps_old_or_new_never_mixed(self, tmp_path):
        inj = FaultInjector()
        wal = WriteAheadLog(tmp_path / "wal.log", sync=True, faults=inj)
        for e in entries(6):
            wal.append(e)
        inj.arm(fp.WAL_ROTATE_RENAME, fp.CRASH)
        with pytest.raises(SimulatedCrash):
            wal.truncate()
        wal.close()
        # Rename never happened: the full old log is still in place.
        survived = list(WriteAheadLog.replay(tmp_path / "wal.log"))
        assert len(survived) == 6

    def test_rotation_completes_after_transient_error(self, tmp_path):
        inj = FaultInjector()
        wal = WriteAheadLog(tmp_path / "wal.log", faults=inj)
        for e in entries(3):
            wal.append(e)
        inj.arm(fp.WAL_ROTATE_RENAME, fp.IO_ERROR, times=2)
        wal.truncate()
        wal.append(entries(1, start_seqno=50)[0])
        wal.close()
        survived = list(WriteAheadLog.replay(tmp_path / "wal.log"))
        assert len(survived) == 1  # old records gone, post-rotation append kept
        assert wal.rotations == 1

    def test_rewrite_replaces_contents_atomically(self, tmp_path):
        inj = FaultInjector()
        wal = WriteAheadLog(tmp_path / "wal.log", faults=inj)
        for e in entries(8):
            wal.append(e)
        keep = entries(3, start_seqno=100)
        wal.rewrite(keep)
        wal.close()
        survived = list(WriteAheadLog.replay(tmp_path / "wal.log"))
        assert [e.seqno for e in survived] == [100, 101, 102]

    def test_torn_rewrite_keeps_the_old_log(self, tmp_path):
        inj = FaultInjector()
        wal = WriteAheadLog(tmp_path / "wal.log", faults=inj)
        for e in entries(8):
            wal.append(e)
        inj.arm(fp.WAL_ROTATE_WRITE, fp.TORN, at_byte=4)
        with pytest.raises(SimulatedCrash):
            wal.rewrite(entries(3, start_seqno=100))
        wal.close()
        survived = list(WriteAheadLog.replay(tmp_path / "wal.log"))
        assert len(survived) == 8  # the complete old log, not a torn new one
