"""Unit and property tests for Bloom filters and fence pointers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.bloom import BloomFilter
from repro.filters.fence import FenceIndex


class TestBloom:
    def test_no_false_negatives(self):
        keys = list(range(0, 5000, 3))
        bloom = BloomFilter.build(keys, bits_per_key=10)
        assert all(bloom.might_contain(k) for k in keys)

    def test_false_positive_rate_near_theory(self):
        keys = list(range(2000))
        bloom = BloomFilter.build(keys, bits_per_key=10)
        probes = range(1_000_000, 1_010_000)
        fp = sum(1 for k in probes if bloom.might_contain(k)) / 10_000
        # ~1% theoretical at 10 bits/key; allow generous slack.
        assert fp < 0.05

    def test_more_bits_fewer_false_positives(self):
        keys = list(range(2000))
        probes = range(1_000_000, 1_005_000)
        rates = []
        for bits in (2, 6, 12):
            bloom = BloomFilter.build(keys, bits_per_key=bits)
            rates.append(sum(1 for k in probes if bloom.might_contain(k)))
        assert rates[0] > rates[1] > rates[2]

    def test_zero_bits_disables_filter(self):
        bloom = BloomFilter.build(range(100), bits_per_key=0)
        assert bloom.might_contain(123456)  # always "maybe"
        assert bloom.size_bytes == 0

    def test_empty_key_set(self):
        bloom = BloomFilter.build([], bits_per_key=10)
        assert not bloom.might_contain(1)

    def test_deterministic_across_instances(self):
        a = BloomFilter.build(range(500), bits_per_key=8)
        b = BloomFilter.build(range(500), bits_per_key=8)
        probes = range(10_000, 11_000)
        assert [a.might_contain(k) for k in probes] == [b.might_contain(k) for k in probes]

    def test_supports_str_bytes_and_int_keys(self):
        keys = ["alpha", b"beta", 3, -(2**70)]
        bloom = BloomFilter.build(keys, bits_per_key=12)
        assert all(bloom.might_contain(k) for k in keys)

    def test_probe_counter(self):
        bloom = BloomFilter.build(range(10), bits_per_key=10)
        bloom.might_contain(1)
        bloom.might_contain(2)
        assert bloom.probes == 2

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(-1, 10)
        with pytest.raises(ValueError):
            BloomFilter(10, -1)

    def test_expected_fp_rate_monotone_in_bits(self):
        low = BloomFilter(1000, 4).expected_false_positive_rate(1000)
        high = BloomFilter(1000, 16).expected_false_positive_rate(1000)
        assert 0 < high < low < 1

    @given(st.sets(st.integers(-(2**40), 2**40), max_size=200))
    @settings(max_examples=40)
    def test_property_no_false_negatives(self, keys):
        bloom = BloomFilter.build(keys, bits_per_key=6)
        assert all(bloom.might_contain(k) for k in keys)


class TestFenceIndex:
    def test_locate_hits_the_containing_extent(self):
        fence = FenceIndex([0, 10, 20], [5, 15, 25])
        assert fence.locate(0) == 0
        assert fence.locate(5) == 0
        assert fence.locate(12) == 1
        assert fence.locate(25) == 2

    def test_locate_misses_gaps_and_outside(self):
        fence = FenceIndex([0, 10], [5, 15])
        assert fence.locate(7) is None  # gap
        assert fence.locate(-1) is None
        assert fence.locate(16) is None

    def test_empty_index(self):
        fence = FenceIndex([], [])
        assert fence.locate(1) is None
        assert list(fence.overlapping(0, 100)) == []
        assert fence.min_bound() is None
        assert fence.max_bound() is None

    def test_overlapping_spans(self):
        fence = FenceIndex([0, 10, 20, 30], [5, 15, 25, 35])
        assert list(fence.overlapping(12, 22)) == [1, 2]
        assert list(fence.overlapping(-5, 100)) == [0, 1, 2, 3]
        assert list(fence.overlapping(6, 9)) == []  # falls in a gap
        assert list(fence.overlapping(5, 5)) == [0]

    def test_overlapping_empty_range(self):
        fence = FenceIndex([0], [10])
        assert list(fence.overlapping(7, 3)) == []

    def test_rejects_unsorted_or_overlapping_extents(self):
        with pytest.raises(ValueError):
            FenceIndex([10, 0], [15, 5])
        with pytest.raises(ValueError):
            FenceIndex([0, 4], [5, 9])  # 4 <= 5: overlap
        with pytest.raises(ValueError):
            FenceIndex([0], [0, 1])  # length mismatch
        with pytest.raises(ValueError):
            FenceIndex([5], [3])  # min > max

    def test_over_builds_from_attributes(self):
        class Extent:
            def __init__(self, lo, hi):
                self.lo, self.hi = lo, hi

        fence = FenceIndex.over([Extent(0, 4), Extent(6, 9)], "lo", "hi")
        assert fence.locate(8) == 1
        assert fence.min_bound() == 0
        assert fence.max_bound() == 9

    @given(
        st.lists(st.integers(0, 500), min_size=1, max_size=40, unique=True),
        st.integers(0, 500),
    )
    @settings(max_examples=60)
    def test_property_locate_matches_linear_scan(self, starts, probe):
        starts = sorted(starts)
        # Build disjoint extents [s, s+1] spaced by construction.
        mins = [s * 3 for s in starts]
        maxes = [s * 3 + 1 for s in starts]
        fence = FenceIndex(mins, maxes)
        expected = next(
            (i for i, (lo, hi) in enumerate(zip(mins, maxes)) if lo <= probe <= hi),
            None,
        )
        assert fence.locate(probe) == expected

    @given(
        st.lists(st.integers(0, 200), min_size=1, max_size=30, unique=True),
        st.integers(0, 650),
        st.integers(0, 650),
    )
    @settings(max_examples=60)
    def test_property_overlapping_matches_linear_scan(self, starts, a, b):
        lo, hi = min(a, b), max(a, b)
        starts = sorted(starts)
        mins = [s * 3 for s in starts]
        maxes = [s * 3 + 1 for s in starts]
        fence = FenceIndex(mins, maxes)
        expected = [
            i for i, (mn, mx) in enumerate(zip(mins, maxes)) if mx >= lo and mn <= hi
        ]
        assert list(fence.overlapping(lo, hi)) == expected
