"""Unit and property tests for the binary codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.lsm.entry import Entry, EntryKind
from repro.storage.codec import (
    decode_entry,
    decode_page,
    encode_entry,
    encode_page,
    pack_obj,
    unpack_obj,
)

scalar = st.one_of(
    st.none(),
    st.integers(-(2**100), 2**100),
    st.binary(max_size=64),
    st.text(max_size=64),
)


def roundtrip_obj(obj):
    buf = bytearray()
    pack_obj(obj, buf)
    decoded, offset = unpack_obj(bytes(buf), 0)
    assert offset == len(buf)
    return decoded


class TestObjects:
    @pytest.mark.parametrize(
        "obj",
        [None, 0, 1, -1, 2**62, -(2**62), 2**90, -(2**90), b"", b"bytes", "", "text", "unié"],
    )
    def test_roundtrip(self, obj):
        assert roundtrip_obj(obj) == obj

    def test_bytes_and_str_stay_distinct(self):
        assert isinstance(roundtrip_obj(b"x"), bytes)
        assert isinstance(roundtrip_obj("x"), str)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            roundtrip_obj(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            roundtrip_obj(3.14)

    def test_truncated_object_raises_corruption(self):
        buf = bytearray()
        pack_obj(b"hello world", buf)
        with pytest.raises(CorruptionError):
            unpack_obj(bytes(buf[:-3]), 0)

    def test_unknown_tag_raises_corruption(self):
        with pytest.raises(CorruptionError):
            unpack_obj(b"\xff", 0)

    @given(scalar)
    @settings(max_examples=80)
    def test_property_roundtrip(self, obj):
        assert roundtrip_obj(obj) == obj


entries = st.builds(
    Entry,
    key=st.one_of(st.integers(-(2**40), 2**40), st.text(max_size=16), st.binary(max_size=16)),
    seqno=st.integers(0, 2**40),
    kind=st.sampled_from([EntryKind.PUT, EntryKind.TOMBSTONE]),
    value=scalar,
    delete_key=st.integers(0, 2**40),
    write_time=st.integers(0, 2**40),
)


class TestEntries:
    def test_roundtrip_put(self):
        entry = Entry.put("user:1", b"profile", seqno=7, write_time=20, delete_key=3)
        buf = bytearray()
        encode_entry(entry, buf)
        decoded, consumed = decode_entry(bytes(buf), 0)
        assert decoded == entry
        assert consumed == len(buf)

    def test_roundtrip_tombstone(self):
        entry = Entry.tombstone(99, seqno=8, write_time=21)
        buf = bytearray()
        encode_entry(entry, buf)
        decoded, _ = decode_entry(bytes(buf), 0)
        assert decoded == entry
        assert decoded.is_tombstone

    def test_invalid_kind_raises_corruption(self):
        buf = bytearray()
        encode_entry(Entry.put(1, "v", 1), buf)
        buf[0] = 200  # clobber the kind byte
        with pytest.raises(CorruptionError):
            decode_entry(bytes(buf), 0)

    def test_truncated_header_raises_corruption(self):
        with pytest.raises(CorruptionError):
            decode_entry(b"\x00\x01", 0)

    @given(entries)
    @settings(max_examples=80)
    def test_property_roundtrip(self, entry):
        buf = bytearray()
        encode_entry(entry, buf)
        decoded, consumed = decode_entry(bytes(buf), 0)
        assert decoded == entry
        assert consumed == len(buf)


class TestPages:
    def _page(self):
        return [Entry.put(k, f"v{k}", seqno=k + 1, write_time=k) for k in range(20)]

    def test_roundtrip(self):
        page = self._page()
        assert decode_page(encode_page(page)) == page

    def test_empty_page(self):
        assert decode_page(encode_page([])) == []

    def test_bad_magic(self):
        blob = bytearray(encode_page(self._page()))
        blob[0] ^= 0xFF
        with pytest.raises(CorruptionError):
            decode_page(bytes(blob))

    def test_payload_bitflip_detected(self):
        blob = bytearray(encode_page(self._page()))
        blob[-1] ^= 0x01
        with pytest.raises(CorruptionError):
            decode_page(bytes(blob))

    def test_truncated_page(self):
        blob = encode_page(self._page())
        with pytest.raises(CorruptionError):
            decode_page(blob[:8])

    def test_trailing_garbage_detected(self):
        # Extra bytes change the CRC; decode must not silently ignore them.
        blob = encode_page(self._page()) + b"junk"
        with pytest.raises(CorruptionError):
            decode_page(blob)

    @given(st.lists(entries, max_size=30))
    @settings(max_examples=40)
    def test_property_roundtrip(self, page):
        assert decode_page(encode_page(page)) == page
