"""Unit tests for the entry model."""

import pytest

from repro.lsm.entry import Entry, EntryKind, newest_wins


class TestConstruction:
    def test_put_constructor(self):
        entry = Entry.put("k", "v", seqno=3, write_time=9)
        assert entry.is_put and not entry.is_tombstone
        assert entry.kind is EntryKind.PUT
        assert entry.value == "v"
        assert entry.write_time == 9

    def test_tombstone_constructor(self):
        entry = Entry.tombstone("k", seqno=4, write_time=11)
        assert entry.is_tombstone and not entry.is_put
        assert entry.value is None

    def test_delete_key_defaults_to_write_time(self):
        entry = Entry.put("k", "v", seqno=1, write_time=42)
        assert entry.delete_key == 42

    def test_explicit_delete_key_wins(self):
        entry = Entry.put("k", "v", seqno=1, write_time=42, delete_key=7)
        assert entry.delete_key == 7

    def test_explicit_delete_key_of_zero_is_respected(self):
        entry = Entry.put("k", "v", seqno=1, write_time=42, delete_key=0)
        assert entry.delete_key == 0


class TestSemantics:
    def test_shadows_requires_same_key_and_newer_seqno(self):
        older = Entry.put("k", "v1", seqno=1)
        newer = Entry.put("k", "v2", seqno=2)
        other = Entry.put("j", "v", seqno=3)
        assert newer.shadows(older)
        assert not older.shadows(newer)
        assert not other.shadows(older)

    def test_equality_and_hash(self):
        a = Entry.put("k", "v", seqno=1, write_time=2)
        b = Entry.put("k", "v", seqno=1, write_time=2)
        c = Entry.put("k", "v", seqno=2, write_time=2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not an entry"

    def test_repr_mentions_kind(self):
        assert "DEL" in repr(Entry.tombstone(1, 1))
        assert "PUT" in repr(Entry.put(1, "v", 1))

    def test_newest_wins(self):
        entries = [
            Entry.put("k", "old", seqno=1),
            Entry.tombstone("k", seqno=3),
            Entry.put("k", "mid", seqno=2),
        ]
        assert newest_wins(entries).seqno == 3

    def test_newest_wins_rejects_empty(self):
        with pytest.raises(ValueError):
            newest_wins([])
