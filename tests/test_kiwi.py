"""Tests for secondary range deletes: KiWi page drops vs full rewrite."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kiwi import full_rewrite_delete, kiwi_range_delete
from repro.errors import AcheronError

from conftest import make_acheron, make_baseline


def load_timestamped(engine, count=600):
    """Insert ``count`` keys; delete_key defaults to the insertion tick,
    so delete-key order == ingestion order.  Keys are shuffled so sort-key
    and delete-key orders differ (the case KiWi exists for)."""
    keys = [(k * 37) % count for k in range(count)]  # permutation of 0..count-1
    for k in keys:
        engine.put(k, f"v{k}")
    return keys


@pytest.mark.usefixtures("serial_write_path")  # asserts schedule-exact counters
class TestKiwiRangeDelete:
    def test_deletes_exactly_the_matching_values(self):
        engine = make_acheron(pages_per_tile=4)
        load_timestamped(engine)
        cutoff = engine.clock.now() // 3
        report = engine.delete_range(0, cutoff, method="kiwi")
        total = report.entries_deleted + report.memtable_entries_deleted
        assert total > 0
        engine.tree.check_invariants()
        # Nothing with delete_key <= cutoff survives anywhere.
        for level in engine.tree.iter_levels():
            for run in level.runs:
                for entry in run.iter_all_entries():
                    if entry.is_put:
                        assert entry.delete_key > cutoff
        for entry in engine.tree.memtable:
            if entry.is_put:
                assert entry.delete_key > cutoff

    def test_unmatched_range_is_a_noop(self):
        engine = make_acheron(pages_per_tile=4)
        load_timestamped(engine)
        before = engine.tree.entry_count_on_disk
        report = engine.delete_range(10**9, 2 * 10**9, method="kiwi")
        assert report.entries_deleted == 0
        assert report.files_modified == 0
        assert engine.tree.entry_count_on_disk == before

    def test_empty_range_rejected(self):
        engine = make_acheron()
        with pytest.raises(AcheronError):
            kiwi_range_delete(engine.tree, 10, 5)

    def test_woven_layout_drops_pages_without_reading_them(self):
        engine = make_acheron(pages_per_tile=4)
        load_timestamped(engine)
        engine.flush()
        cutoff = engine.clock.now() // 2
        report = engine.delete_range(0, cutoff, method="kiwi")
        assert report.pages_dropped > 0
        # Free drops: pages dropped must not appear in the read counter.
        assert report.io.pages_read < report.pages_dropped + report.pages_rewritten + 5

    def test_classic_layout_drops_little(self):
        # With h=1 pages follow sort-key order; since sort key and delete
        # key are decorrelated here, few pages are fully covered.
        woven = make_acheron(pages_per_tile=4)
        classic = make_acheron(pages_per_tile=1)
        load_timestamped(woven)
        load_timestamped(classic)
        woven.flush()
        classic.flush()
        cutoff = woven.clock.now() // 2
        report_woven = woven.delete_range(0, cutoff, method="kiwi")
        report_classic = classic.delete_range(0, cutoff, method="kiwi")
        assert report_woven.pages_dropped > report_classic.pages_dropped
        assert report_woven.io.pages_read < report_classic.io.pages_read

    def test_tombstones_survive_secondary_delete(self):
        # Point-delete tombstones must never be removed by a secondary
        # range delete, or older versions below would resurface.
        engine = make_acheron(pages_per_tile=4, delete_persistence_threshold=100_000)
        for k in range(800):
            engine.put(k, f"v{k}")
        for k in range(0, 800, 2):
            engine.delete(k)
        engine.flush()
        tombs_before = (
            engine.tree.tombstone_count_on_disk + engine.tree.memtable.tombstone_count
        )
        assert tombs_before > 0
        engine.delete_range(0, engine.clock.now(), method="kiwi")  # covers everything
        tombs_after = (
            engine.tree.tombstone_count_on_disk + engine.tree.memtable.tombstone_count
        )
        assert tombs_after == tombs_before
        # And the deleted keys are still deleted.
        assert engine.get(5) is None

    def test_reads_remain_correct_after_page_drops(self):
        engine = make_acheron(pages_per_tile=4)
        load_timestamped(engine)
        cutoff = engine.clock.now() // 2
        engine.delete_range(0, cutoff, method="kiwi")
        # Survivors answer correctly; victims are gone.
        for level in engine.tree.iter_levels():
            for run in level.runs:
                for entry in list(run.iter_all_entries())[::7]:
                    assert engine.get(entry.key) == entry.value

    def test_report_summary_is_informative(self):
        engine = make_acheron(pages_per_tile=4)
        load_timestamped(engine)
        report = engine.delete_range(0, engine.clock.now() // 2)
        text = report.summary()
        assert "kiwi" in text and "dropped" in text


class TestFullRewriteDelete:
    def test_same_logical_result_as_kiwi(self):
        kiwi_engine = make_acheron(pages_per_tile=4)
        rewrite_engine = make_acheron(pages_per_tile=4)
        load_timestamped(kiwi_engine)
        load_timestamped(rewrite_engine)
        cutoff = kiwi_engine.clock.now() // 2
        kiwi_engine.delete_range(0, cutoff, method="kiwi")
        rewrite_engine.delete_range(0, cutoff, method="full_rewrite")
        kiwi_view = dict(kiwi_engine.scan(0, 10_000))
        rewrite_view = dict(rewrite_engine.scan(0, 10_000))
        assert kiwi_view == rewrite_view

    def test_full_rewrite_reads_every_page(self):
        engine = make_baseline()
        load_timestamped(engine)
        engine.flush()
        pages = engine.tree.page_count_on_disk
        report = engine.delete_range(0, 1, method="full_rewrite")  # nearly empty range
        assert report.io.pages_read >= pages

    def test_kiwi_is_cheaper_than_full_rewrite(self):
        kiwi_engine = make_acheron(pages_per_tile=4)
        rewrite_engine = make_acheron(pages_per_tile=4)
        load_timestamped(kiwi_engine)
        load_timestamped(rewrite_engine)
        kiwi_engine.flush()
        rewrite_engine.flush()
        cutoff = kiwi_engine.clock.now() // 2
        kiwi_io = kiwi_engine.delete_range(0, cutoff, method="kiwi").io
        rewrite_io = rewrite_engine.delete_range(0, cutoff, method="full_rewrite").io
        assert kiwi_io.total_pages < rewrite_io.total_pages

    def test_empty_range_rejected(self):
        engine = make_baseline()
        with pytest.raises(AcheronError):
            full_rewrite_delete(engine.tree, 10, 5)

    def test_invariants_after_rewrite(self):
        engine = make_baseline()
        load_timestamped(engine)
        engine.delete_range(0, engine.clock.now() // 3, method="full_rewrite")
        engine.tree.check_invariants()


class TestEngineMethodSelection:
    def test_auto_picks_by_layout(self):
        woven = make_acheron(pages_per_tile=4)
        classic = make_baseline()
        load_timestamped(woven, 100)
        load_timestamped(classic, 100)
        assert woven.delete_range(0, 10).method == "kiwi"
        assert classic.delete_range(0, 10).method == "full_rewrite"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            make_baseline().delete_range(0, 1, method="magic")


class TestProperties:
    @given(
        st.integers(0, 400),
        st.integers(0, 400),
        st.integers(2, 6),
    )
    @settings(max_examples=12, deadline=None)
    def test_property_kiwi_equals_model(self, a, b, h):
        lo, hi = min(a, b), max(a, b)
        engine = make_acheron(pages_per_tile=h)
        count = 240
        keys = [(k * 29) % count for k in range(count)]
        model = {}
        for k in keys:
            engine.put(k, f"v{k}")
            model[k] = (f"v{k}", engine.clock.now() - 1)  # delete_key = tick at put
        engine.delete_range(lo, hi, method="kiwi")
        expected = {k: v for k, (v, dkey) in model.items() if not (lo <= dkey <= hi)}
        assert dict(engine.scan(0, 10_000)) == expected
        engine.tree.check_invariants()
