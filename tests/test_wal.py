"""Unit tests for the write-ahead log, including crash shapes."""

import pytest

from repro.errors import CorruptionError, WALError
from repro.lsm.entry import Entry
from repro.storage.wal import WriteAheadLog


def sample_entries(n):
    out = []
    for i in range(n):
        if i % 3 == 2:
            out.append(Entry.tombstone(i, seqno=i + 1, write_time=i))
        else:
            out.append(Entry.put(i, f"v{i}", seqno=i + 1, write_time=i))
    return out


class TestAppendReplay:
    def test_replay_of_missing_file_is_empty(self, tmp_path):
        assert list(WriteAheadLog.replay(tmp_path / "nope.log")) == []

    def test_roundtrip_preserves_order_and_content(self, tmp_path):
        path = tmp_path / "wal.log"
        entries = sample_entries(25)
        with WriteAheadLog(path) as wal:
            for entry in entries:
                wal.append(entry)
        assert list(WriteAheadLog.replay(path)) == entries

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(WALError):
            wal.append(Entry.put(1, "v", 1))
        with pytest.raises(WALError):
            wal.truncate()

    def test_truncate_discards_everything(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            for entry in sample_entries(5):
                wal.append(entry)
            wal.truncate()
            wal.append(Entry.put(99, "fresh", 100))
        replayed = list(WriteAheadLog.replay(path))
        assert len(replayed) == 1
        assert replayed[0].key == 99

    def test_reopen_appends_after_existing_records(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(Entry.put(1, "a", 1))
        with WriteAheadLog(path) as wal:
            wal.append(Entry.put(2, "b", 2))
        assert [e.key for e in WriteAheadLog.replay(path)] == [1, 2]

    def test_records_appended_counter(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            for entry in sample_entries(4):
                wal.append(entry)
            assert wal.records_appended == 4


class TestCrashShapes:
    def _write(self, path, n):
        with WriteAheadLog(path) as wal:
            for entry in sample_entries(n):
                wal.append(entry)

    def test_torn_final_record_is_tolerated(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write(path, 10)
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # chop mid-record
        replayed = list(WriteAheadLog.replay(path))
        assert len(replayed) == 9

    def test_torn_final_header_is_tolerated(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write(path, 3)
        path.write_bytes(path.read_bytes() + b"\x01\x02")  # partial next header
        assert len(list(WriteAheadLog.replay(path))) == 3

    def test_corrupt_final_record_is_treated_as_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write(path, 5)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert len(list(WriteAheadLog.replay(path))) == 4

    def test_corruption_before_the_tail_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write(path, 10)
        data = bytearray(path.read_bytes())
        data[9] ^= 0xFF  # inside the first record's payload (after its 8B frame)
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptionError):
            list(WriteAheadLog.replay(path))

    def test_empty_file_replays_empty(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"")
        assert list(WriteAheadLog.replay(path)) == []
