"""The sharded engine: partition map, routing, cross-shard scans,
fan-out atomicity, shard splits, aggregated observability, and the
doctor/CLI/runner integration.

The contract under test: range partitioning must never change *what* the
engine stores, only *where* -- every logical-contents assertion compares
a sharded engine against the single-tree answer -- and the shard-global
delete fan-out must be all-or-nothing across crashes.
"""

from __future__ import annotations

import json

import pytest

from repro.config import acheron_config, baseline_config
from repro.core.engine import AcheronEngine
from repro.errors import AcheronError, ConfigError, WorkloadError
from repro.shard import (
    PartitionMap,
    ShardedEngine,
    default_shards,
    describe_range,
    is_sharded_root,
    shard_dir_name,
    validate_layout,
)
from repro.storage.faults import FaultInjector
from repro.tools.doctor import diagnose_store, scrub_store
from repro.workload.runner import run_workload
from repro.workload.spec import Operation, OpKind

from conftest import TINY

BIG = 10**9
KEY_SPACE = (0, 1_000)


def make_sharded(shards=2, directory=None, engine="baseline", **overrides):
    params = dict(TINY)
    workers = overrides.pop("workers", None)
    boundaries = overrides.pop("boundaries", None)
    wal_sync = overrides.pop("wal_sync", False)
    if engine == "acheron":
        d_th = overrides.pop("delete_persistence_threshold", 1_000)
        params.setdefault("pages_per_tile", 4)
        params.update(overrides)
        cfg = acheron_config(delete_persistence_threshold=d_th, **params)
    else:
        params.update(overrides)
        cfg = baseline_config(**params)
    return ShardedEngine(
        cfg,
        directory=directory,
        shards=shards,
        boundaries=boundaries,
        key_space=KEY_SPACE,
        wal_sync=wal_sync,
    )


def contents(engine) -> list[tuple]:
    return list(engine.scan(-BIG, BIG))


# ---------------------------------------------------------------------------
# the partition map
# ---------------------------------------------------------------------------
class TestPartitionMap:
    def test_uniform_covers_the_keyspace(self):
        pmap = PartitionMap.uniform(4, lo=0, hi=400)
        assert pmap.shards == 4
        assert pmap.to_list() == [100, 200, 300]
        lo0, hi0 = pmap.shard_range(0)
        assert lo0 is None and hi0 == 100
        lo3, hi3 = pmap.shard_range(3)
        assert lo3 == 300 and hi3 is None

    def test_boundary_key_belongs_to_the_right_shard(self):
        # Half-open ranges: a boundary is the inclusive lo of the shard
        # to its right.
        pmap = PartitionMap([100, 200])
        assert pmap.shard_for(99) == 0
        assert pmap.shard_for(100) == 1
        assert pmap.shard_for(199) == 1
        assert pmap.shard_for(200) == 2

    def test_single_shard_has_no_boundaries(self):
        pmap = PartitionMap.uniform(1)
        assert pmap.to_list() == []
        assert pmap.shard_for(-BIG) == 0 and pmap.shard_for(BIG) == 0

    def test_overlapping(self):
        pmap = PartitionMap([100, 200, 300])
        assert list(pmap.overlapping(0, 50)) == [0]
        assert list(pmap.overlapping(150, 250)) == [1, 2]
        assert list(pmap.overlapping(-BIG, BIG)) == [0, 1, 2, 3]
        assert list(pmap.overlapping(50, 40)) == []  # empty range

    def test_split_inserts_a_boundary(self):
        pmap = PartitionMap([100])
        split = pmap.split(0, 40)
        assert split.to_list() == [40, 100]
        assert split.shard_for(39) == 0 and split.shard_for(40) == 1

    def test_split_key_must_lie_strictly_inside(self):
        pmap = PartitionMap([100])
        with pytest.raises(AcheronError):
            pmap.split(1, 100)  # == shard 1's lo
        with pytest.raises(AcheronError):
            pmap.split(0, 100)  # == shard 0's hi (exclusive)

    def test_roundtrip_and_equality(self):
        pmap = PartitionMap([7, 11])
        assert PartitionMap.from_list(pmap.to_list()) == pmap
        assert hash(PartitionMap([7, 11])) == hash(pmap)
        assert PartitionMap([7]) != pmap

    def test_describe_range_renders_unbounded_edges(self):
        assert "-inf" in describe_range(None, 5)
        assert "+inf" in describe_range(5, None)


# ---------------------------------------------------------------------------
# routing and the data plane
# ---------------------------------------------------------------------------
class TestRouting:
    def test_keys_land_on_their_shard_trees(self):
        engine = make_sharded(shards=4)
        for k in range(0, 1_000, 7):
            engine.put(k, f"v{k}")
        engine.flush()
        for k in range(0, 1_000, 7):
            index = engine.shard_index_for(k)
            assert engine.partition_map.shard_for(k) == index
            assert engine.shards[index].get(k) == f"v{k}"
            # No other shard may hold the key.
            for j, other in enumerate(engine.shards):
                if j != index:
                    assert other.get(k) is None
        engine.verify_invariants()
        engine.close()

    def test_point_ops_match_single_tree(self):
        single = AcheronEngine.baseline(**TINY)
        sharded = make_sharded(shards=3)
        for k in range(300):
            single.put(k, f"v{k}")
            sharded.put(k, f"v{k}")
        for k in range(0, 300, 5):
            single.delete(k)
            sharded.delete(k)
        for k in range(320):
            assert sharded.get(k) == single.get(k)
            assert sharded.contains(k) == single.contains(k)
        single.close()
        sharded.close()

    def test_put_many_and_apply_batch_group_by_shard(self):
        engine = make_sharded(shards=4)
        engine.put_many((k, f"v{k}") for k in range(200))
        engine.apply_batch(
            [("delete", k) for k in range(0, 200, 4)]
            + [("put", k, f"w{k}") for k in range(200, 240)]
        )
        assert engine.get(4) is None
        assert engine.get(230) == "w230"
        assert engine.get(5) == "v5"
        engine.close()


class TestCrossShardScans:
    def probe(self, shards):
        engine = make_sharded(shards=shards)
        keys = [k * 3 % 997 for k in range(400)]
        for k in keys:
            engine.put(k, f"v{k}")
        engine.flush()
        return engine, sorted(set(keys))

    def test_scan_is_globally_ordered(self):
        engine, keys = self.probe(4)
        got = [k for k, _ in engine.scan(0, BIG)]
        assert got == keys
        engine.close()

    def test_scan_limit_early_exits(self):
        engine, keys = self.probe(4)
        got = list(engine.scan(0, BIG, limit=10))
        assert [k for k, _ in got] == keys[:10]
        engine.close()

    def test_scan_reverse(self):
        engine, keys = self.probe(4)
        got = [k for k, _ in engine.scan(0, BIG, reverse=True)]
        assert got == list(reversed(keys))
        got_limited = [k for k, _ in engine.scan(0, BIG, limit=7, reverse=True)]
        assert got_limited == list(reversed(keys))[:7]
        engine.close()

    def test_scan_bounds_only_touch_overlapping_shards(self):
        engine, keys = self.probe(4)
        lo, hi = 100, 220
        expected = [k for k in keys if lo <= k <= hi]
        assert [k for k, _ in engine.scan(lo, hi)] == expected
        engine.close()


# ---------------------------------------------------------------------------
# logical-contents equivalence across shard counts
# ---------------------------------------------------------------------------
class TestEquivalence:
    def mixed_ops(self, n=1_200, seed=17):
        from random import Random

        rng = Random(seed)
        ops, live = [], []
        for _ in range(n):
            if live and rng.random() < 0.2:
                ops.append(("delete", live[rng.randrange(len(live))]))
            else:
                key = rng.randrange(KEY_SPACE[1])
                live.append(key)
                ops.append(("put", key, f"v{key}"))
        return ops

    @pytest.mark.parametrize("shards", [2, 4])
    def test_contents_match_single_tree(self, shards):
        ops = self.mixed_ops()
        single = AcheronEngine.baseline(**TINY)
        sharded = make_sharded(shards=shards)
        for engine in (single, sharded):
            for op in ops:
                if op[0] == "put":
                    engine.put(op[1], op[2])
                else:
                    engine.delete(op[1])
        sharded.write_barrier()
        assert contents(sharded) == contents(single)
        sharded.verify_invariants()
        single.close()
        sharded.close()

    def test_fanout_matches_single_tree_with_explicit_delete_keys(self):
        # Per-shard clocks tick independently, so clock-relative delete
        # keys differ between shard counts; with *explicit* delete keys
        # the secondary delete must pick identical victims everywhere.
        single = AcheronEngine.acheron(
            delete_persistence_threshold=1_000, pages_per_tile=4, **TINY
        )
        sharded = make_sharded(shards=4, engine="acheron")
        for engine in (single, sharded):
            for k in range(400):
                engine.put(k, f"v{k}", delete_key=k)
            engine.flush()
            engine.delete_range(100, 250)
        assert contents(sharded) == contents(single)
        single.close()
        sharded.close()


# ---------------------------------------------------------------------------
# shard-global delete persistence: the all-or-nothing fan-out
# ---------------------------------------------------------------------------
class TestFanout:
    def seeded(self, tmp_path, shards=2):
        engine = make_sharded(
            shards=shards, directory=str(tmp_path / "store"), engine="acheron"
        )
        for k in range(400):
            engine.put(k, f"v{k}", delete_key=k)
        engine.flush()
        return engine

    def test_bad_arguments_rejected_before_the_intent_is_published(self, tmp_path):
        engine = self.seeded(tmp_path)
        with pytest.raises(ValueError):
            engine.delete_range(0, 10, method="meteor")
        with pytest.raises(AcheronError):
            engine.delete_range(10, 0)
        layout = json.loads((tmp_path / "store" / "SHARDS.json").read_text())
        assert not layout.get("pending_fanout")
        engine.close()

    def test_fanout_clears_its_intent(self, tmp_path):
        engine = self.seeded(tmp_path)
        report = engine.delete_range(100, 250)
        assert report.entries_deleted > 0
        layout = json.loads((tmp_path / "store" / "SHARDS.json").read_text())
        assert not layout.get("pending_fanout")
        for k in range(400):
            assert engine.get(k) == (None if 100 <= k <= 250 else f"v{k}")
        engine.close()

    def test_half_applied_fanout_is_finished_on_reopen(self, tmp_path):
        # Simulate a crash after shard 0 applied the delete but before
        # the intent cleared: the intent is durable, shard 1 still holds
        # its window, and recovery must finish the job (idempotently
        # re-applying on shard 0).
        engine = self.seeded(tmp_path, shards=2)
        engine._publish_layout(pending_fanout={"lo": 100, "hi": 250, "method": "auto"})
        engine.shards[0].delete_range(100, 250)
        for shard in engine.shards:
            shard.close()
        engine._closed = True

        reopened = ShardedEngine(directory=str(tmp_path / "store"))
        assert reopened.pending_recovery == []
        for k in range(400):
            assert reopened.get(k) == (None if 100 <= k <= 250 else f"v{k}")
        layout = json.loads((tmp_path / "store" / "SHARDS.json").read_text())
        assert not layout.get("pending_fanout")
        reopened.verify_invariants()
        reopened.close()

    def test_read_only_open_reports_unreplayed_intents(self, tmp_path):
        engine = self.seeded(tmp_path, shards=2)
        engine._publish_layout(pending_fanout={"lo": 100, "hi": 250, "method": "auto"})
        for shard in engine.shards:
            shard.close()
        engine._closed = True

        ro = ShardedEngine(directory=str(tmp_path / "store"), read_only=True)
        assert any("fan-out" in note or "delete" in note for note in ro.pending_recovery)
        ro.close()
        # A writable open then heals the store.
        rw = ShardedEngine(directory=str(tmp_path / "store"))
        assert rw.pending_recovery == []
        rw.close()


# ---------------------------------------------------------------------------
# shard splits and the rebalancer
# ---------------------------------------------------------------------------
class TestSplit:
    def test_split_preserves_contents_and_reroutes(self):
        engine = make_sharded(shards=2)
        for k in range(500):
            engine.put(k, f"v{k}")
        engine.flush()
        before = contents(engine)
        report = engine.split_shard(0, split_key=120)
        assert engine.partition_map.shards == 3
        assert report.entries_moved > 0
        assert contents(engine) == before
        assert engine.shard_index_for(119) == 0
        assert engine.shard_index_for(120) == 1
        engine.verify_invariants()
        engine.close()

    def test_split_defaults_to_the_median(self):
        engine = make_sharded(shards=1)
        for k in range(300):
            engine.put(k, f"v{k}")
        engine.flush()
        report = engine.split_shard(0)
        assert report.split_key is not None
        lo, hi = engine.partition_map.shard_range(0)
        assert hi == report.split_key
        engine.verify_invariants()
        engine.close()

    def test_split_of_an_empty_shard_is_refused(self):
        engine = make_sharded(shards=2)
        with pytest.raises(AcheronError):
            engine.split_shard(0)
        engine.close()

    def test_durable_split_survives_reopen(self, tmp_path):
        engine = make_sharded(shards=2, directory=str(tmp_path / "store"))
        for k in range(500):
            engine.put(k, f"v{k}")
        engine.flush()
        engine.split_shard(0, split_key=120)
        before = contents(engine)
        boundaries = engine.partition_map.to_list()
        engine.close()

        reopened = ShardedEngine(directory=str(tmp_path / "store"))
        assert reopened.partition_map.to_list() == boundaries
        assert reopened.partition_map.shards == 3
        assert contents(reopened) == before
        reopened.verify_invariants()
        reopened.close()

    def test_rebalance_splits_only_under_skew(self):
        # All keys below the boundary: shard 0 carries everything.
        engine = make_sharded(shards=2, boundaries=[900])
        for k in range(400):
            engine.put(k, f"v{k}")
        engine.flush()
        report = engine.rebalance(skew_threshold=1.5)
        assert report is not None and report.source == 0
        assert engine.partition_map.shards == 3
        # Balanced now (relative to the threshold): no further split.
        assert engine.rebalance(skew_threshold=10.0) is None
        engine.verify_invariants()
        engine.close()


# ---------------------------------------------------------------------------
# durable layout, env default, config conflicts
# ---------------------------------------------------------------------------
class TestDurability:
    def test_roundtrip(self, tmp_path):
        root = tmp_path / "store"
        engine = make_sharded(shards=3, directory=str(root))
        for k in range(200):
            engine.put(k, f"v{k}")
        before = contents(engine)
        engine.close()
        assert is_sharded_root(root)
        assert (root / shard_dir_name(0)).is_dir()

        reopened = ShardedEngine(directory=str(root))
        assert reopened.partition_map.shards == 3
        assert contents(reopened) == before
        reopened.close()

    def test_layout_conflict_is_a_config_error(self, tmp_path):
        root = tmp_path / "store"
        make_sharded(shards=3, directory=str(root)).close()
        with pytest.raises(ConfigError):
            ShardedEngine(directory=str(root), shards=2)

    def test_read_only_requires_an_initialized_store(self, tmp_path):
        with pytest.raises(ConfigError):
            ShardedEngine(directory=str(tmp_path / "missing"), read_only=True)

    def test_env_default_shards(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "5")
        assert default_shards() == 5
        engine = ShardedEngine(baseline_config(**TINY), key_space=KEY_SPACE)
        assert engine.partition_map.shards == 5
        engine.close()
        monkeypatch.delenv("REPRO_SHARDS")
        assert default_shards() == 1

    def test_validate_layout_rejects_malformed_manifests(self):
        from repro.errors import CorruptionError

        good = {
            "shard_layout": 1,
            "boundaries": [100],
            "shard_dirs": ["shard-00", "shard-01"],
        }
        assert validate_layout(good).shards == 2
        for breakage in (
            {"boundaries": [100, 200]},  # count mismatch
            {"shard_dirs": ["shard-00", "shard-00"]},  # duplicate dirs
            {"shard_layout": None},
        ):
            bad = dict(good)
            bad.update(breakage)
            with pytest.raises(CorruptionError):
                validate_layout(bad)


# ---------------------------------------------------------------------------
# shard-global observability
# ---------------------------------------------------------------------------
class TestObservability:
    def loaded(self, shards=3):
        engine = make_sharded(shards=shards, engine="acheron")
        for k in range(600):
            engine.put(k, f"v{k}", delete_key=k)
        for k in range(0, 600, 6):
            engine.delete(k)
        engine.flush()
        return engine

    def test_stats_aggregate_and_per_shard_rows(self):
        engine = self.loaded(shards=3)
        stats = engine.stats()
        assert len(stats.shards) == 3
        per = [s.stats() for s in engine.shards]
        assert stats.flush_count == sum(p.flush_count for p in per)
        assert stats.io.pages_written == sum(p.io.pages_written for p in per)
        assert stats.tick == max(p.tick for p in per)
        rows = stats.shards
        assert sum(r["entries_on_disk"] for r in rows) == sum(
            p.amplification.entries_on_disk for p in per
        )
        assert all("range" in r and "compliant" in r for r in rows)
        assert stats.to_dict()["shards"] == rows
        engine.close()

    def test_merged_persistence_ledger(self):
        engine = self.loaded(shards=3)
        engine.compact_all()
        merged = engine.persistence_stats()
        per = [s.persistence_stats() for s in engine.shards]
        assert merged.registered == sum(p.registered for p in per)
        assert merged.persisted == sum(p.persisted for p in per)
        assert merged.pending == sum(p.pending for p in per)
        assert merged.max_latency == max(
            (p.max_latency for p in per if p.max_latency is not None), default=None
        )
        engine.close()

    def test_compliance_report_covers_every_shard(self):
        engine = self.loaded(shards=3)
        report = engine.compliance_report()
        assert len(report["shards"]) == 3
        assert report["deletes_registered"] == sum(
            r["deletes_registered"] for r in report["shards"]
        )
        engine.close()

    def test_shard_inspector_renders(self):
        from repro.demo.inspector import ShardInspector

        engine = self.loaded(shards=3)
        text = ShardInspector(engine, name="t").dashboard(per_shard=True)
        assert "3 shards" in text
        assert "t/shard-2" in text
        assert "shard-global persistence" in text
        engine.close()


# ---------------------------------------------------------------------------
# doctor + CLI integration
# ---------------------------------------------------------------------------
class TestDoctorAndCLI:
    def store(self, tmp_path):
        root = tmp_path / "store"
        engine = make_sharded(shards=3, directory=str(root), engine="acheron")
        for k in range(0, 900, 3):  # spans all three shard ranges
            engine.put(k, f"v{k}", delete_key=k)
        engine.flush()
        engine.delete_range(50, 120)
        engine.close()
        return root

    def test_doctor_iterates_all_shard_directories(self, tmp_path):
        root = self.store(tmp_path)
        for check in (diagnose_store, scrub_store):
            report = check(root)
            assert report.healthy, report.render()
            text = report.render()
            for i in range(3):
                assert shard_dir_name(i) in text
        # A corrupted shard surfaces with its shard prefix.
        victim = next((root / shard_dir_name(1)).glob("sst-*"))
        victim.write_bytes(b"garbage")
        report = scrub_store(root)
        assert not report.healthy
        assert shard_dir_name(1) in "".join(e for e in report.errors)

    def test_cli_stats_json_includes_shards(self, tmp_path, capsys):
        from repro.cli import main

        root = self.store(tmp_path)
        assert main(["stats", str(root), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["shards"]) == 3
        assert "read_path" in payload and "cache" in payload
        assert payload["flush_count"] >= 3

    def test_cli_stats_json_on_single_tree_store(self, tmp_path, capsys):
        from repro.cli import main

        engine = AcheronEngine.baseline(directory=str(tmp_path / "flat"), **TINY)
        for k in range(100):
            engine.put(k, f"v{k}")
        engine.close()
        assert main(["stats", str(tmp_path / "flat"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shards"] == []
        assert payload["tick"] == 100

    def test_cli_sharded_workload_verify_inspect(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "wl"
        rc = main(
            ["workload", "--shards", "2", "--ops", "400", "--preload", "200",
             "--directory", str(root)]
        )
        assert rc == 0
        assert is_sharded_root(root)
        assert main(["verify", str(root)]) == 0
        assert main(["inspect", str(root)]) == 0
        capsys.readouterr()


# ---------------------------------------------------------------------------
# the workload runner against sharded + fault-injected engines
# ---------------------------------------------------------------------------
class TestRunnerIntegration:
    def ingest_ops(self, n=600):
        ops = []
        for k in range(n):
            ops.append(Operation(OpKind.INSERT, key=(k * 7) % KEY_SPACE[1],
                                 value=f"v{k}"))
            if k % 5 == 4:
                ops.append(Operation(OpKind.POINT_DELETE, key=(k * 3) % KEY_SPACE[1]))
        return ops

    def test_shard_affine_writers_match_serial(self):
        ops = self.ingest_ops()
        serial = make_sharded(shards=4)
        run_workload(serial, ops)
        threaded = make_sharded(shards=4)
        result = run_workload(threaded, ops, writers=4)
        threaded.write_barrier()
        assert result.operations == len(ops)
        assert contents(threaded) == contents(serial)
        serial.close()
        threaded.close()

    def test_fault_injected_engine_refuses_multi_writer_replay(self):
        engine = AcheronEngine(
            baseline_config(**TINY), faults=FaultInjector(seed=1)
        )
        with pytest.raises(WorkloadError, match="fault-injected"):
            run_workload(engine, self.ingest_ops(10), writers=2)
        # Serial replay of the same engine still works.
        result = run_workload(engine, self.ingest_ops(10))
        assert result.operations == len(self.ingest_ops(10))
        engine.close()
