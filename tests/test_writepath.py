"""The concurrent write path: pipelined flush, parallel compaction
executor, backpressure, and the determinism switch.

The contract under test: an engine opened with ``workers >= 2`` must be
*observationally identical* to the serial engine -- same acknowledged
contents, same read results during and after background work -- while
flushes and compactions run on background threads.  ``workers == 1``
must remain the bit-identical inline path the benchmarks archive.
"""

from __future__ import annotations

import threading
from random import Random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CompactionStyle, acheron_config, baseline_config
from repro.core.engine import AcheronEngine
from repro.storage import faults as fp
from repro.storage.faults import FaultInjector
from repro.workload.runner import run_workload
from repro.workload.spec import Operation, OpKind

from conftest import TINY

BIG = 10**9


def make_concurrent(workers: int = 2, **overrides) -> AcheronEngine:
    params = dict(TINY)
    params.update(overrides)
    return AcheronEngine(baseline_config(**params), workers=workers)


def contents(engine: AcheronEngine) -> list[tuple]:
    return list(engine.scan(-BIG, BIG))


# ---------------------------------------------------------------------------
# satellite (a): reads during an in-flight flush see the frozen queue
# ---------------------------------------------------------------------------
class TestFrozenVisibility:
    def test_gets_and_scans_see_frozen_memtables(self):
        engine = make_concurrent(workers=2)
        wp = engine.tree.write_path
        wp.hold_flushes = True  # pin every flush in flight
        try:
            n = TINY["memtable_entries"] * 3
            for k in range(n):
                engine.put(k, f"v{k}")
            # Rotations happened but nothing was flushed: part of the
            # acknowledged data lives only in the frozen queue.
            assert len(wp.frozen) >= 2
            assert engine.tree.flush_count == 0
            for k in range(n):
                assert engine.get(k) == f"v{k}"
            assert contents(engine) == [(k, f"v{k}") for k in range(n)]
        finally:
            wp.hold_flushes = False
        engine.flush()
        assert not wp.frozen
        assert contents(engine) == [(k, f"v{k}") for k in range(n)]
        engine.close()

    def test_deletes_in_frozen_queue_shadow_published_runs(self):
        engine = make_concurrent(workers=2)
        wp = engine.tree.write_path
        n = TINY["memtable_entries"]
        for k in range(n):
            engine.put(k, "old")
        engine.flush()  # "old" versions now in published runs
        wp.hold_flushes = True
        try:
            for k in range(0, n, 2):
                engine.delete(k)
            for k in range(1, n, 2):
                engine.put(k, "new")
            # Force the mixed memtable into the frozen queue.
            for k in range(n, 2 * n):
                engine.put(k, "fill")
            assert len(wp.frozen) >= 1
            for k in range(0, n, 2):
                assert engine.get(k) is None
            for k in range(1, n, 2):
                assert engine.get(k) == "new"
            observed = dict(engine.scan(0, n - 1))
            assert all(k % 2 == 1 for k in observed)
        finally:
            wp.hold_flushes = False
        engine.close()


# ---------------------------------------------------------------------------
# serial/concurrent equivalence across policies
# ---------------------------------------------------------------------------
def _mixed_stream(n: int, seed: int) -> list[tuple]:
    rng = Random(seed)
    ops: list[tuple] = []
    for i in range(n):
        r = rng.random()
        if r < 0.2 and i:
            ops.append(("delete", rng.randrange(n)))
        else:
            ops.append(("put", rng.randrange(n), f"v{i}"))
    return ops


def _engine_for(policy: str, workers: int) -> AcheronEngine:
    if policy == "acheron":
        cfg = acheron_config(
            delete_persistence_threshold=1_000, pages_per_tile=4, **TINY
        )
    elif policy == "tiering":
        cfg = baseline_config(policy=CompactionStyle.TIERING, **TINY)
    else:
        cfg = baseline_config(**TINY)
    return AcheronEngine(cfg, workers=workers)


class TestEquivalence:
    @pytest.mark.parametrize("policy", ["leveling", "tiering", "acheron"])
    def test_concurrent_contents_match_serial(self, policy):
        ops = _mixed_stream(1_500, seed=29)
        results = {}
        for workers in (1, 3):
            engine = _engine_for(policy, workers)
            for i, op in enumerate(ops):
                if op[0] == "put":
                    engine.put(op[1], op[2])
                else:
                    engine.delete(op[1])
                if i % 400 == 399:
                    engine.flush()
            engine.compact_all()
            engine.verify_invariants()
            results[workers] = contents(engine)
            engine.close()
        assert results[3] == results[1]

    def test_exclusive_operations_run_amid_workers(self):
        # delete_range and full compaction quiesce the pool (exclusive
        # inline mode) and must behave exactly like the serial engine.
        serial = _engine_for("acheron", 1)
        concurrent = _engine_for("acheron", 2)
        outcomes = []
        for engine in (serial, concurrent):
            for k in range(300):
                engine.put(k, f"v{k}")
            engine.flush()
            report = engine.delete_range(0, engine.clock.now() // 2)
            engine.compact_all()
            outcomes.append((report.entries_deleted, contents(engine)))
            engine.verify_invariants()
            engine.close()
        assert outcomes[0] == outcomes[1]


# ---------------------------------------------------------------------------
# satellite (d): property-based linearizability vs a model dict
# ---------------------------------------------------------------------------
op_strategy = st.tuples(
    st.integers(0, 3), st.integers(0, 96), st.integers(0, 10_000)
)


class TestLinearizability:
    @given(ops=st.lists(op_strategy, max_size=400))
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_reads_match_model_while_background_work_runs(self, ops):
        # Single acknowledged stream (so the model is exact) with
        # background flushes/compactions racing every read: rotations
        # happen mid-stream and gets/scans must never miss or resurrect.
        engine = make_concurrent(workers=2, memtable_entries=32)
        model: dict = {}
        try:
            for code, key, payload in ops:
                if code == 0:
                    engine.put(key, payload)
                    model[key] = payload
                elif code == 1:
                    engine.delete(key)
                    model.pop(key, None)
                elif code == 2:
                    assert engine.get(key) == model.get(key)
                else:
                    lo, hi = key, key + (payload % 32)
                    expected = sorted(
                        (k, v) for k, v in model.items() if lo <= k <= hi
                    )
                    assert list(engine.scan(lo, hi)) == expected
            engine.tree.write_barrier()
            assert dict(contents(engine)) == model
            engine.verify_invariants()
        finally:
            engine.close()

    def test_concurrent_writers_converge_to_last_writer_wins(self):
        writers, versions, keys = 3, 40, 24
        engine = make_concurrent(workers=2, memtable_entries=32)
        errors: list[BaseException] = []

        def writer(idx: int) -> None:
            try:
                for version in range(versions):
                    for key in range(idx, keys, writers):
                        engine.put(key, (key, version))
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        def reader() -> None:
            # Per-key monotonicity: with one writer per key, observed
            # versions may only move forward.
            seen: dict[int, int] = {}
            try:
                for _ in range(200):
                    for key in range(keys):
                        value = engine.get(key)
                        if value is None:
                            continue
                        _, version = value
                        assert version >= seen.get(key, -1), (
                            f"key {key} went backwards: {version} after {seen[key]}"
                        )
                        seen[key] = version
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(writers)
        ] + [threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]
        engine.tree.write_barrier()
        assert dict(contents(engine)) == {
            k: (k, versions - 1) for k in range(keys)
        }
        engine.verify_invariants()
        engine.close()


# ---------------------------------------------------------------------------
# backpressure
# ---------------------------------------------------------------------------
class TestBackpressure:
    def test_soft_delay_engages_and_is_counted(self):
        engine = make_concurrent(workers=2)
        wp = engine.tree.write_path
        wp.soft_queue_depth = 0  # every rotation trips the soft threshold
        for k in range(TINY["memtable_entries"] * 4):
            engine.put(k, k)
        assert wp.stats.soft_delays >= 1
        assert wp.stats.stall_seconds > 0
        from repro.metrics.writepath import write_path_report

        assert write_path_report(engine.tree)["stalled"] is True
        engine.close()

    def test_hard_stall_blocks_then_progresses(self):
        engine = make_concurrent(workers=2)
        wp = engine.tree.write_path
        wp.max_frozen = 1
        wp.flush_batch_wait = 0.0
        n = TINY["memtable_entries"] * 6
        for k in range(n):
            engine.put(k, f"v{k}")
        assert wp.stats.hard_stalls >= 1
        # Stalls bound the queue without losing anything.
        engine.tree.write_barrier()
        assert contents(engine) == [(k, f"v{k}") for k in range(n)]
        engine.close()

    def test_counters_survive_exclusive_range_delete(self, monkeypatch):
        # A secondary range delete quiesces the pool (exclusive inline
        # mode) in the middle of backpressured ingest.  The exclusive
        # section must neither corrupt the stall accounting (counters
        # going negative) nor leave a token unreturned (a permanent
        # stall: post-delete ingest would block forever).
        monkeypatch.setenv("REPRO_WORKERS", "4")
        engine = AcheronEngine.acheron(
            delete_persistence_threshold=1_000, pages_per_tile=4, **TINY
        )
        wp = engine.tree.write_path
        assert wp is not None and wp.workers == 4
        wp.soft_queue_depth = 0  # every rotation trips the soft threshold
        wp.max_frozen = 1  # and the hard stall engages under load
        wp.flush_batch_wait = 0.0
        n = TINY["memtable_entries"] * 4
        for k in range(n):
            engine.put(k, f"v{k}")
        report = engine.delete_range(0, engine.clock.now() // 2)
        assert report.entries_deleted >= 0
        before = dict(wp.report())
        # No counter may be negative at any observation point.
        for key in ("soft_delays", "hard_stalls", "queue_depth", "stall_seconds",
                    "flush_jobs", "compaction_inflight"):
            assert before[key] >= 0, f"{key} went negative: {before[key]}"
        # The pool must still make progress: a second backpressured burst
        # completes (a leaked stall token would hang this loop).
        for k in range(n, n * 2):
            engine.put(k, f"v{k}")
        engine.tree.write_barrier()
        after = wp.report()
        for key in ("soft_delays", "hard_stalls", "stall_seconds"):
            assert after[key] >= before[key] >= 0
        assert after["queue_depth"] == 0
        assert [kv for kv in contents(engine) if kv[0] >= n] == [
            (k, f"v{k}") for k in range(n, n * 2)
        ]
        engine.verify_invariants()
        engine.close()


# ---------------------------------------------------------------------------
# the determinism switch
# ---------------------------------------------------------------------------
class TestDeterminismSwitch:
    def test_workers_1_is_the_inline_path(self):
        engine = make_concurrent(workers=1)
        assert engine.tree.write_path is None
        assert engine.tree.write_stats()["mode"] == "serial"
        engine.close()

    def test_env_default_enables_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        engine = AcheronEngine.baseline(**TINY)
        wp = engine.tree.write_path
        assert wp is not None and wp.workers == 3
        engine.close()

    def test_tight_persistence_threshold_caps_flush_batching(self):
        # A tombstone makes no D_th progress in the frozen queue, so a
        # tight threshold must defeat the batching hold-out...
        tight = AcheronEngine.acheron(
            delete_persistence_threshold=800, pages_per_tile=4, workers=4, **TINY
        )
        assert tight.tree.write_path.flush_batch_target == 1
        tight.close()
        # ...while a production-scale threshold leaves it untouched.
        loose = AcheronEngine.acheron(
            delete_persistence_threshold=50_000, pages_per_tile=4, workers=4, **TINY
        )
        assert loose.tree.write_path.flush_batch_target == 8
        loose.close()

    def test_fault_injected_engines_default_to_serial(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        engine = AcheronEngine(
            baseline_config(**TINY),
            directory=str(tmp_path / "db"),
            wal_sync=True,
            faults=FaultInjector(seed=1),
        )
        assert engine.tree.write_path is None
        engine.close()


# ---------------------------------------------------------------------------
# satellite (d): a fault firing inside a worker thread
# ---------------------------------------------------------------------------
class TestWorkerFault:
    def test_background_fault_surfaces_and_recovery_is_clean(self, tmp_path):
        directory = str(tmp_path / "db")
        injector = FaultInjector(seed=5)
        config = baseline_config(**TINY)
        engine = AcheronEngine(
            config,
            directory=directory,
            wal_sync=True,
            faults=injector,
            workers=2,
        )
        injector.arm(fp.SSTABLE_WRITE, fp.CRASH)
        acked: dict[int, str] = {}
        with pytest.raises(Exception):
            for i in range(4_000):
                engine.put(i, f"v{i}")
                acked[i] = f"v{i}"
            engine.flush()  # backstop: a barrier surfaces any bg error
        # The fault fired on a background thread, not the caller's.
        assert injector.fired_count(fp.SSTABLE_WRITE) > 0
        wp = engine.tree.write_path
        assert wp is not None and wp._error is not None
        wp.abort()  # simulate process death
        engine.tree._closed = True

        reopened = AcheronEngine(config, directory=directory, wal_sync=True)
        try:
            for key, value in acked.items():
                assert reopened.get(key) == value, f"acked write {key} lost"
            reopened.verify_invariants()
        finally:
            reopened.close()


# ---------------------------------------------------------------------------
# multi-writer workload replay
# ---------------------------------------------------------------------------
class TestMultiWriterReplay:
    def _operations(self, n: int, seed: int) -> list[Operation]:
        rng = Random(seed)
        ops = []
        for i in range(n):
            r = rng.random()
            if r < 0.15 and i:
                ops.append(Operation(OpKind.POINT_DELETE, key=rng.randrange(n)))
            elif r < 0.2:
                ops.append(Operation(OpKind.POINT_QUERY, key=rng.randrange(n)))
            else:
                ops.append(
                    Operation(OpKind.INSERT, key=rng.randrange(n), value=f"v{i}")
                )
        return ops

    def test_sharded_replay_matches_serial(self):
        ops = self._operations(1_200, seed=17)
        final = {}
        for workers in (1, 3):
            engine = make_concurrent(workers=workers)
            result = run_workload(
                engine, ops, writers=workers if workers > 1 else None
            )
            assert result.operations == len(ops)
            engine.tree.write_barrier()
            final[workers] = contents(engine)
            engine.close()
        assert final[3] == final[1]

    def test_io_attribution_reconciles(self):
        ops = self._operations(800, seed=23)
        engine = make_concurrent(workers=2)
        result = run_workload(engine, ops, writers=2)
        total_written = sum(s.pages_written for s in result.per_kind.values())
        total_read = sum(s.pages_read for s in result.per_kind.values())
        stats = engine.disk.stats
        # Pooled attribution must reconcile exactly with the device
        # counters accumulated during the replay (largest-remainder split).
        assert total_written <= stats.pages_written
        assert total_read <= stats.pages_read
        assert result.kind(OpKind.INSERT).count > 0
        engine.close()


# ---------------------------------------------------------------------------
# satellite (b): metrics, doctor, inspector
# ---------------------------------------------------------------------------
class TestObservability:
    def _worked_engine(self, workers: int) -> AcheronEngine:
        engine = make_concurrent(workers=workers)
        for k in range(TINY["memtable_entries"] * 4):
            engine.put(k, k)
        engine.flush()
        return engine

    @pytest.mark.parametrize("workers", [1, 2])
    def test_report_and_tables_render_both_modes(self, workers):
        from repro.metrics.writepath import (
            format_workers,
            format_write_path,
            write_path_report,
        )

        engine = self._worked_engine(workers)
        report = write_path_report(engine.tree)
        expected_mode = "serial" if workers == 1 else "concurrent"
        assert report["mode"] == expected_mode
        assert report["flush_jobs"] >= 1
        assert report["flush_batching"] >= (0.0 if workers == 1 else 1.0)
        table = format_write_path(engine.tree, name="t")
        assert "write path" in table and expected_mode in table
        workers_table = format_workers(engine.tree, name="t")
        assert ("(inline)" in workers_table) == (workers == 1)
        engine.close()

    def test_engine_stats_include_write_path(self):
        engine = self._worked_engine(2)
        payload = engine.stats().to_dict()
        assert payload["write_path"]["mode"] == "concurrent"
        assert payload["write_path"]["flush_jobs"] >= 1
        engine.close()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_doctor_examines_write_path(self, workers):
        from repro.tools import examine_write_path

        engine = self._worked_engine(workers)
        report = examine_write_path(engine.tree, name="t")
        assert report.healthy
        assert report.stats["write_path"]["mode"] == (
            "serial" if workers == 1 else "concurrent"
        )
        engine.close()

    def test_inspector_dashboard_has_write_path_table(self):
        from repro.demo.inspector import TreeInspector

        engine = self._worked_engine(2)
        dashboard = TreeInspector(engine).dashboard()
        assert "write path" in dashboard
        engine.close()


# ---------------------------------------------------------------------------
# block-cache thread safety (readers race background invalidations)
# ---------------------------------------------------------------------------
class TestCacheThreadSafety:
    def test_concurrent_get_put_invalidate(self):
        # Regression: find_victim used to iterate a shard's OrderedDict
        # while a compaction worker invalidated pages of a merged-away
        # file ("OrderedDict mutated during iteration").
        from repro.storage.cache import BlockCache

        cache = BlockCache(capacity=32)
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn(tid: int) -> None:
            rng = Random(tid)
            try:
                while not stop.is_set():
                    file_id = rng.randrange(8)
                    page = rng.randrange(64)
                    roll = rng.random()
                    if roll < 0.45:
                        cache.put(file_id, page, b"x" * 8, pinned=roll < 0.05)
                    elif roll < 0.9:
                        cache.get(file_id, page)
                    else:
                        cache.invalidate_file(file_id)
            except BaseException as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        import time

        time.sleep(1.0)
        stop.set()
        for t in threads:
            t.join()
        assert not errors, errors[0]
        assert len(cache) <= 32

    def test_reads_with_cache_race_background_compactions(self):
        engine = make_concurrent(workers=2, cache_pages=32)
        rng = Random(11)
        model: dict = {}
        for i in range(3_000):
            roll = rng.random()
            key = rng.randrange(400)
            if roll < 0.55:
                engine.put(key, i)
                model[key] = i
            elif roll < 0.75:
                engine.delete(key)
                model.pop(key, None)
            else:
                assert engine.get(key) == model.get(key)
        engine.tree.write_barrier()
        assert dict(contents(engine)) == model
        engine.verify_invariants()
        engine.close()


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_close_drains_and_close_is_idempotent(self, tmp_path):
        engine = AcheronEngine(
            baseline_config(**TINY), directory=str(tmp_path / "db"), workers=2
        )
        n = TINY["memtable_entries"] * 3
        for k in range(n):
            engine.put(k, f"v{k}")
        engine.close()
        engine.close()
        reopened = AcheronEngine(
            baseline_config(**TINY), directory=str(tmp_path / "db")
        )
        try:
            assert contents(reopened) == [(k, f"v{k}") for k in range(n)]
        finally:
            reopened.close()

    def test_durable_concurrent_reopen_roundtrip(self, tmp_path):
        directory = str(tmp_path / "db")
        engine = AcheronEngine(
            baseline_config(**TINY), directory=directory, workers=2
        )
        for k in range(500):
            engine.put(k, f"a{k}")
        for k in range(0, 500, 5):
            engine.delete(k)
        engine.close()
        reopened = AcheronEngine(
            baseline_config(**TINY), directory=directory, workers=2
        )
        try:
            for k in range(500):
                expected = None if k % 5 == 0 else f"a{k}"
                assert reopened.get(k) == expected
            reopened.verify_invariants()
        finally:
            reopened.close()
