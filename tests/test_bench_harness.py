"""Tests for the benchmark harness support (experiment recording etc.)."""

import json

import pytest

import repro.bench.harness as harness
from repro.bench.harness import (
    EXPERIMENT_SCALE,
    ExperimentResult,
    make_acheron,
    make_baseline,
    record_experiment,
    run_mixed_workload,
)
from repro.workload.spec import OpKind, WorkloadSpec


class TestEngineFactories:
    def test_scale_applied(self):
        engine = make_baseline()
        assert engine.config.memtable_entries == EXPERIMENT_SCALE["memtable_entries"]
        assert not engine.config.fade_enabled
        engine.close()

    def test_overrides_win(self):
        engine = make_baseline(memtable_entries=64)
        assert engine.config.memtable_entries == 64
        engine.close()

    def test_acheron_factory(self):
        engine = make_acheron(delete_persistence_threshold=123, pages_per_tile=2)
        assert engine.config.delete_persistence_threshold == 123
        assert engine.config.pages_per_tile == 2
        engine.close()


class TestRunMixedWorkload:
    def test_returns_result_and_stats(self):
        spec = WorkloadSpec(
            operations=300,
            preload=200,
            weights={OpKind.INSERT: 0.7, OpKind.POINT_QUERY: 0.3},
            seed=5,
        )
        engine = make_baseline()
        result, stats = run_mixed_workload(engine, spec)
        # Only the mixed phase is in the returned result.
        assert result.operations == 300
        # ...but the stats snapshot covers the whole run.
        assert stats.counters["puts"] >= 200
        engine.close()


class TestRecordExperiment:
    def _result(self):
        return ExperimentResult(
            exp_id="TEST-X",
            title="a test experiment",
            headers=["metric", "value"],
            rows=[["alpha", 1], ["beta", float("inf")], ["gamma", 2.5]],
            notes="test notes",
            extra={"nan": float("nan"), "plain": 7},
        )

    def test_render_contains_table_and_notes(self):
        text = self._result().render()
        assert "TEST-X" in text
        assert "alpha" in text
        assert "test notes" in text

    def test_record_archives_txt_and_json(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        record_experiment(self._result())
        out = capsys.readouterr().out
        assert "TEST-X" in out
        assert (tmp_path / "TEST-X.txt").exists()
        payload = json.loads((tmp_path / "TEST-X.json").read_text())
        assert payload["exp_id"] == "TEST-X"
        assert payload["rows"][0] == ["alpha", 1]
        # Non-finite floats are stringified so the JSON stays valid.
        assert payload["rows"][1][1] == "inf"
        assert payload["extra"]["nan"] == "nan"
        assert payload["extra"]["plain"] == 7

    def test_record_attaches_to_benchmark_fixture(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)

        class FakeBenchmark:
            extra_info: dict = {}

        record_experiment(self._result(), FakeBenchmark)
        assert FakeBenchmark.extra_info["experiment"]["exp_id"] == "TEST-X"
