"""Unit tests for SSTable files, runs, and the cache-aware page reader."""

import pytest

from repro.config import LSMConfig
from repro.lsm.entry import Entry
from repro.lsm.run import (
    FileIdAllocator,
    PageReader,
    Run,
    SSTableFile,
    build_files,
)
from repro.storage.cache import BlockCache
from repro.storage.disk import SimulatedDisk


def put(key, seqno=None, dkey=None):
    return Entry.put(key, f"v{key}", seqno if seqno is not None else key + 1, 0, dkey)


def tomb(key, seqno, t=0):
    return Entry.tombstone(key, seqno, write_time=t)


def config(**kw):
    kw.setdefault("memtable_entries", 64)
    kw.setdefault("entries_per_page", 4)
    return LSMConfig(**kw)


def reader(cache_pages=0):
    return PageReader(SimulatedDisk(), BlockCache(cache_pages))


class TestFileBuild:
    def test_build_rejects_empty(self):
        with pytest.raises(ValueError):
            SSTableFile.build(1, [], config(), created_at=0)

    def test_metadata(self):
        entries = [put(k) for k in range(10)]
        entries[3] = tomb(3, 99, t=42)
        entries[7] = tomb(7, 100, t=17)
        file = SSTableFile.build(1, entries, config(), created_at=5)
        assert file.entry_count == 10
        assert file.tombstone_count == 2
        assert file.min_key == 0 and file.max_key == 9
        assert file.oldest_tombstone_time == 17
        assert file.created_at == 5
        assert file.tombstone_density == pytest.approx(0.2)
        file.check_invariants()

    def test_no_tombstones_means_no_age(self):
        file = SSTableFile.build(1, [put(k) for k in range(4)], config(), 0)
        assert file.oldest_tombstone_time is None
        assert file.tombstone_density == 0.0

    def test_page_count_and_flat_index(self):
        cfg = config(entries_per_page=4, pages_per_tile=2)
        file = SSTableFile.build(1, [put(k) for k in range(20)], cfg, 0)
        # 20 entries / 4 per page = 5 pages; tiles of 2 pages -> 3 tiles.
        assert file.page_count == 5
        assert len(file.tiles) == 3
        assert file.flat_page_index(0, 0) == 0
        assert file.flat_page_index(1, 0) == 2
        assert file.flat_page_index(2, 0) == 4

    def test_build_files_partitions_at_limit(self):
        cfg = config(max_file_entries=8)
        files = build_files([put(k) for k in range(20)], cfg, FileIdAllocator(), 0)
        assert [f.entry_count for f in files] == [8, 8, 4]
        assert [f.file_id for f in files] == [1, 2, 3]
        # Files partition the key space in order.
        assert files[0].max_key < files[1].min_key < files[2].min_key

    def test_file_id_allocator(self):
        ids = FileIdAllocator(start=5)
        assert ids() == 5 and ids() == 6
        ids.advance_past(10)
        assert ids() == 11
        ids.advance_past(3)  # never goes backwards
        assert ids() == 12
        assert ids.peek() == 13


class TestFileReads:
    def test_get_found_and_missing(self):
        file = SSTableFile.build(1, [put(k) for k in range(0, 40, 2)], config(), 0)
        r = reader()
        assert file.get(10, r).value == "v10"
        assert file.get(11, r) is None
        assert file.get(-5, r) is None

    def test_get_charges_one_page_read_classic_layout(self):
        file = SSTableFile.build(1, [put(k) for k in range(32)], config(), 0)
        r = reader()
        file.get(17, r)
        assert r.disk.stats.pages_read == 1

    def test_kiwi_point_lookup_may_probe_multiple_pages(self):
        # Weave with h=4: a point probe inside a tile may touch up to h pages.
        cfg = config(entries_per_page=4, pages_per_tile=4)
        entries = [put(k, dkey=1000 - k) for k in range(16)]
        file = SSTableFile.build(1, entries, cfg, 0)
        r = reader()
        assert file.get(15, r).key == 15
        assert 1 <= r.disk.stats.pages_read <= 4

    def test_cache_absorbs_repeat_reads(self):
        file = SSTableFile.build(1, [put(k) for k in range(32)], config(), 0)
        r = reader(cache_pages=16)
        file.get(17, r)
        first = r.disk.stats.pages_read
        file.get(17, r)
        assert r.disk.stats.pages_read == first  # served from cache

    def test_range_entries_inclusive(self):
        file = SSTableFile.build(1, [put(k) for k in range(30)], config(), 0)
        got = [e.key for e in file.range_entries(7, 13, reader())]
        assert got == list(range(7, 14))

    def test_range_entries_pays_all_pages_of_overlapping_tiles(self):
        cfg = config(entries_per_page=4, pages_per_tile=4)
        entries = [put(k, dkey=1000 - k) for k in range(16)]  # one tile
        file = SSTableFile.build(1, entries, cfg, 0)
        r = reader()
        list(file.range_entries(0, 1, r))
        assert r.disk.stats.pages_read == 4  # the whole tile

    def test_iter_all_entries_is_key_ordered_even_when_woven(self):
        cfg = config(entries_per_page=4, pages_per_tile=4)
        entries = [put(k, dkey=1000 - k) for k in range(16)]
        file = SSTableFile.build(1, entries, cfg, 0)
        assert [e.key for e in file.iter_all_entries()] == list(range(16))

    def test_overlaps(self):
        file = SSTableFile.build(1, [put(k) for k in range(10, 20)], config(), 0)
        assert file.overlaps(5, 10)
        assert file.overlaps(19, 30)
        assert not file.overlaps(0, 9)
        assert not file.overlaps(20, 30)


class TestRun:
    def _files(self):
        cfg = config(max_file_entries=8)
        return build_files([put(k) for k in range(24)], cfg, FileIdAllocator(), 0)

    def test_rejects_empty_and_overlapping(self):
        with pytest.raises(ValueError):
            Run([])
        cfg = config()
        a = SSTableFile.build(1, [put(k) for k in range(10)], cfg, 0)
        b = SSTableFile.build(2, [put(k) for k in range(5, 15)], cfg, 0)
        with pytest.raises(ValueError):
            Run([a, b])

    def test_sorts_files_by_min_key(self):
        files = self._files()
        run = Run(list(reversed(files)))
        assert [f.file_id for f in run.files] == [f.file_id for f in files]

    def test_accounting(self):
        run = Run(self._files())
        assert run.entry_count == 24
        assert run.tombstone_count == 0
        assert len(run) == 3
        assert run.min_key == 0 and run.max_key == 23

    def test_get_routes_to_the_right_file(self):
        run = Run(self._files())
        r = reader()
        assert run.get(0, r).value == "v0"
        assert run.get(15, r).value == "v15"
        assert run.get(23, r).value == "v23"
        assert run.get(50, r) is None

    def test_bloom_prevents_page_reads_for_missing_keys(self):
        cfg = config(max_file_entries=8, bloom_bits_per_key=16)
        files = build_files([put(k * 2) for k in range(12)], cfg, FileIdAllocator(), 0)
        run = Run(files)
        r = reader()
        misses = sum(1 for k in range(1, 40, 2) if run.get(k, r) is None)
        assert misses == 20
        # With 16 bits/key nearly all odd probes are filtered before I/O.
        assert r.disk.stats.pages_read <= 2

    def test_range_entries_across_files(self):
        run = Run(self._files())
        got = [e.key for e in run.range_entries(5, 18, reader())]
        assert got == list(range(5, 19))

    def test_overlapping_files(self):
        run = Run(self._files())  # files cover 0-7, 8-15, 16-23
        assert [f.min_key for f in run.overlapping_files(6, 9)] == [0, 8]
        assert run.overlapping_files(30, 40) == []

    def test_iter_all_entries(self):
        run = Run(self._files())
        assert [e.key for e in run.iter_all_entries()] == list(range(24))
