"""Tests for FADE: TTL allocation, expiry triggers, and the paper's
central guarantee -- every tombstone persists within ``D_th``."""

import pytest

from repro.config import CompactionStyle, acheron_config
from repro.core.fade import FadeScheduler
from repro.core.persistence import PersistenceTracker
from repro.lsm.compaction.task import CompactionReason
from repro.lsm.tree import LSMTree

from conftest import TINY


def make_fade_tree(d_th=1000, policy=CompactionStyle.LEVELING, **overrides):
    params = dict(TINY)
    params.update(overrides)
    tracker = PersistenceTracker(threshold=d_th)
    tree = LSMTree(
        acheron_config(
            delete_persistence_threshold=d_th,
            pages_per_tile=1,
            policy=policy,
            **params,
        ),
        listener=tracker,
    )
    return tree, tracker


class TestTTLAllocation:
    def _scheduler(self, d_th=1000, size_ratio=3):
        params = dict(TINY)
        params["size_ratio"] = size_ratio
        config = acheron_config(delete_persistence_threshold=d_th, **params)
        return FadeScheduler(config)

    def test_requires_threshold(self):
        from repro.config import baseline_config

        with pytest.raises(ValueError):
            FadeScheduler(baseline_config())

    def test_cumulative_ttl_is_monotone_in_level(self):
        fade = self._scheduler()
        deepest = 4
        ttls = [fade.cumulative_ttl(i, deepest) for i in range(deepest + 1)]
        assert ttls == sorted(ttls)
        assert all(t >= 1 for t in ttls)

    def test_bottom_level_gets_exactly_d_th(self):
        fade = self._scheduler(d_th=5000)
        for deepest in (1, 2, 3, 5):
            assert fade.cumulative_ttl(deepest, deepest) == 5000
            assert fade.cumulative_ttl(deepest + 2, deepest) == 5000

    def test_shares_grow_geometrically(self):
        fade = self._scheduler(d_th=10_000, size_ratio=3)
        deepest = 3
        d0 = fade.cumulative_ttl(0, deepest)
        d1 = fade.cumulative_ttl(1, deepest) - d0
        d2 = fade.cumulative_ttl(2, deepest) - fade.cumulative_ttl(1, deepest)
        # Each level's share is ~T times the previous one.
        assert d1 == pytest.approx(3 * d0, rel=0.2)
        assert d2 == pytest.approx(3 * d1, rel=0.2)

    def test_rejects_negative_level(self):
        with pytest.raises(ValueError):
            self._scheduler().cumulative_ttl(-1, 3)

    def test_buffer_deadline_shares_level_one_slice(self):
        fade = self._scheduler(d_th=1000)
        assert fade.buffer_deadline(100, deepest=2) == 100 + fade.cumulative_ttl(1, 2)
        # Never beyond the full threshold.
        assert fade.buffer_deadline(100, deepest=1) <= 100 + 1000


class TestGuarantee:
    """The headline property: persisted latency <= D_th, no pending
    tombstone older than D_th."""

    def _check_compliance(self, tree, tracker):
        stats = tracker.stats(tree.clock.now())
        assert stats.violations == 0, f"latency violations: {stats}"
        assert stats.compliant(), f"non-compliant: {stats}"

    @pytest.mark.parametrize("d_th", [300, 1000, 5000])
    def test_leveling_guarantee_across_thresholds(self, d_th):
        tree, tracker = make_fade_tree(d_th=d_th)
        for k in range(800):
            tree.put(k, k)
        for k in range(0, 800, 3):
            tree.delete(k)
        for k in range(800, 800 + 2 * d_th):
            tree.put(k, k)  # let time pass well beyond D_th
        self._check_compliance(tree, tracker)
        assert tracker.persisted_count > 0

    def test_lazy_leveling_guarantee(self):
        tree, tracker = make_fade_tree(
            d_th=800, policy=CompactionStyle.LAZY_LEVELING
        )
        for k in range(600):
            tree.put(k, k)
        for k in range(0, 600, 4):
            tree.delete(k)
        for k in range(600, 3000):
            tree.put(k, k)
        self._check_compliance(tree, tracker)
        assert tracker.persisted_count > 0

    def test_tiering_guarantee(self):
        tree, tracker = make_fade_tree(d_th=800, policy=CompactionStyle.TIERING)
        for k in range(600):
            tree.put(k, k)
        for k in range(0, 600, 4):
            tree.delete(k)
        for k in range(600, 3000):
            tree.put(k, k)
        self._check_compliance(tree, tracker)
        assert tracker.persisted_count > 0

    def test_guarantee_holds_under_interleaved_deletes(self):
        tree, tracker = make_fade_tree(d_th=500)
        for k in range(4000):
            tree.put(k % 701, k)
            if k % 7 == 0:
                tree.delete((k * 3) % 701)
        # Drain: advance time so the last deletes hit their deadlines.
        tree.advance_time(600)
        self._check_compliance(tree, tracker)

    def test_idle_time_still_persists_deletes(self):
        # Deletes issued then the workload stops: advance_time must drive
        # the flush + expiry compactions with no further ingestion.
        tree, tracker = make_fade_tree(d_th=400)
        for k in range(100):
            tree.put(k, k)
        for k in range(50):
            tree.delete(k)
        tree.advance_time(500)
        stats = tracker.stats(tree.clock.now())
        assert stats.pending == 0
        assert stats.violations == 0

    def test_baseline_does_violate(self):
        # Sanity: without FADE the same workload leaves old pending deletes.
        # The tree must be deep enough that tombstones cannot all reach the
        # bottom level through incidental compaction.
        from repro.config import baseline_config

        tracker = PersistenceTracker(threshold=400)
        tree = LSMTree(baseline_config(**TINY), listener=tracker)
        for k in range(1500):
            tree.put(k, k)
        for k in range(0, 1500, 10):
            tree.delete(k)
        for k in range(1500, 2500):
            tree.put(k, k)
        stats = tracker.stats(tree.clock.now())
        assert not stats.compliant()


class TestMechanics:
    def test_expiry_produces_ttl_or_purge_compactions(self):
        # A deep tree: tombstones flushed into L1 cannot be dropped by the
        # L1 collapse (deeper data exists), so persisting them within D_th
        # requires FADE's own triggers.
        tree, _ = make_fade_tree(d_th=300)
        for k in range(800):
            tree.put(k, k)
        for k in range(0, 800, 2):
            tree.delete(k)
        tree.advance_time(400)
        reasons = {e.reason for e in tree.compaction_log}
        assert CompactionReason.TTL_EXPIRY.value in reasons or (
            CompactionReason.BOTTOM_PURGE.value in reasons
        )
        fade = tree.fade
        assert fade.expiry_compactions + fade.purge_compactions > 0

    def test_bottom_purge_merges_tiered_bottom_level(self):
        # Tiering is where tombstones genuinely come to rest at the bottom
        # (a run merged onto a non-empty last level cannot drop them);
        # FADE's BOTTOM_PURGE is the mechanism that clears them.
        tree, tracker = make_fade_tree(
            d_th=300, policy=CompactionStyle.TIERING
        )
        for k in range(800):
            tree.put(k, k)
        for k in range(0, 800, 2):
            tree.delete(k)
        tree.advance_time(400)
        assert tree.tombstone_count_on_disk == 0
        stats = tracker.stats(tree.clock.now())
        assert stats.pending == 0 and stats.violations == 0
        # Deleted keys stay deleted, surviving keys stay readable.
        assert tree.get(0) is None
        assert tree.get(1) == 1

    def test_scheduler_registry_cleans_up(self):
        tree, _ = make_fade_tree(d_th=300)
        for k in range(2000):
            tree.put(k, k)
            if k % 5 == 0:
                tree.delete(k // 2)
        tree.advance_time(400)
        fade = tree.fade
        # Every tracked file must still be live in the tree.
        live_ids = {
            f.file_id for lvl in tree.iter_levels() for f in lvl.iter_files()
        }
        assert set(fade._live).issubset(live_ids)

    def test_next_deadline_visibility(self):
        # With many tombstones resting in non-bottom levels, the scheduler
        # must be tracking them, and the earliest deadline can never exceed
        # "oldest tombstone + D_th".
        tree, _ = make_fade_tree(d_th=10_000)
        for k in range(800):
            tree.put(k, k)
        for k in range(0, 800, 2):
            tree.delete(k)
        tree.flush()
        assert tree.tombstone_count_on_disk > 0
        assert tree.fade.tracked_file_count() > 0
        deadline = tree.fade.next_deadline()
        assert deadline is not None
        assert deadline <= tree.clock.now() + 10_000

    def test_single_delete_persists_by_its_deadline(self):
        # A lone tombstone is not urgent enough for the drain-score picker
        # to chase, but the TTL machinery must still persist it within
        # D_th even if no further compaction pressure arrives.
        tree, tracker = make_fade_tree(d_th=10_000)
        for k in range(900):
            tree.put(k, k)
        tree.delete(1)
        tree.flush()
        tree.advance_time(10_001)
        stats = tracker.stats(tree.clock.now())
        assert stats.persisted + stats.superseded == 1
        assert stats.pending == 0
        assert stats.violations == 0

    def test_files_without_tombstones_are_not_tracked(self):
        tree, _ = make_fade_tree(d_th=1000)
        for k in range(300):
            tree.put(k, k)
        assert tree.fade.tracked_file_count() == 0


class TestFadeWithLazyLeveling:
    def test_ttl_plan_uses_tiering_semantics(self):
        # Under lazy leveling FADE's expiry merges whole levels (the
        # tiering branch); the guarantee must hold and the structure stay
        # legal (single leveled last run at quiescence).
        tree, tracker = make_fade_tree(
            d_th=400, policy=CompactionStyle.LAZY_LEVELING
        )
        for k in range(900):
            tree.put(k, k)
        for k in range(0, 900, 2):
            tree.delete(k)
        tree.advance_time(500)
        stats = tracker.stats(tree.clock.now())
        assert stats.pending == 0 and stats.violations == 0
        last = tree.deepest_nonempty_level()
        assert tree.level(last).run_count == 1


class TestFadeTrivialMoves:
    def test_expired_file_with_clear_path_moves_free(self):
        # Build a deep tree, then delete keys in a range that has no
        # overlap below after full compaction of a disjoint region is
        # hard to stage; instead verify globally: with trivial moves on,
        # some TTL expiries may resolve without I/O, and the guarantee
        # still holds.
        tree, tracker = make_fade_tree(d_th=400)
        for k in range(2000):
            tree.put(k, k)
        for k in range(1900, 2000):
            tree.delete(k)  # newest range: likely clear below
        tree.advance_time(500)
        stats = tracker.stats(tree.clock.now())
        assert stats.pending == 0 and stats.violations == 0

    def test_guarantee_with_trivial_moves_disabled(self):
        tree, tracker = make_fade_tree(d_th=400, trivial_moves=False)
        for k in range(1200):
            tree.put(k, k)
        for k in range(0, 1200, 5):
            tree.delete(k)
        tree.advance_time(500)
        stats = tracker.stats(tree.clock.now())
        assert stats.pending == 0 and stats.violations == 0


class TestFadeStaleEntries:
    def test_stale_heap_entries_are_skipped(self):
        # Force the heap to hold entries for files that have since been
        # compacted away: plan() must skip them silently.
        tree, _ = make_fade_tree(d_th=600)
        for k in range(800):
            tree.put(k, k)
        for k in range(0, 800, 2):
            tree.delete(k)
        # Full compaction destroys every tracked file (persisting all
        # tombstones); the heap still holds their old deadlines.
        tree.full_compaction()
        assert tree.fade.tracked_file_count() == 0
        tree.advance_time(700)  # pops every stale entry
        assert tree.fade.next_deadline() is None
