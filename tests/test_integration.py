"""Integration tests: whole-engine behaviour under realistic workloads,
cross-engine equivalence, and the paper's qualitative claims at test scale."""

import random

import pytest

from repro.config import CompactionStyle
from repro.workload.generator import WorkloadGenerator
from repro.workload.runner import run_workload
from repro.workload.spec import OpKind, WorkloadSpec

from conftest import TINY, make_acheron, make_baseline


def mixed_spec(operations=1500, preload=800, delete_fraction=0.15, seed=99):
    return WorkloadSpec(
        operations=operations,
        preload=preload,
        weights={
            OpKind.INSERT: 0.45,
            OpKind.UPDATE: 0.15,
            OpKind.POINT_QUERY: 0.20,
            OpKind.EMPTY_QUERY: 0.03,
            OpKind.RANGE_QUERY: 0.02,
            OpKind.POINT_DELETE: 0.15,
        },
        seed=seed,
    ).with_delete_fraction(delete_fraction)


class TestModelEquivalence:
    """The engine must behave exactly like a dict under any op sequence."""

    def _run_against_model(self, engine, seed, ops=2500):
        rng = random.Random(seed)
        model = {}
        for i in range(ops):
            action = rng.random()
            key = rng.randrange(400)
            if action < 0.55:
                engine.put(key, i)
                model[key] = i
            elif action < 0.75:
                engine.delete(key)
                model.pop(key, None)
            elif action < 0.95:
                assert engine.get(key) == model.get(key), f"key {key} at op {i}"
            else:
                lo = rng.randrange(400)
                hi = lo + rng.randrange(50)
                expected = sorted(
                    (k, v) for k, v in model.items() if lo <= k <= hi
                )
                assert list(engine.scan(lo, hi)) == expected, f"scan at op {i}"
        # Final full verification.
        assert dict(engine.scan(-1, 10**9)) == model
        engine.tree.check_invariants()

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_baseline_leveling(self, seed):
        self._run_against_model(make_baseline(), seed)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_baseline_tiering(self, seed):
        self._run_against_model(make_baseline(policy=CompactionStyle.TIERING), seed)

    @pytest.mark.parametrize("seed", [10, 11])
    def test_baseline_lazy_leveling(self, seed):
        self._run_against_model(
            make_baseline(policy=CompactionStyle.LAZY_LEVELING), seed
        )

    def test_acheron_lazy_leveling(self):
        self._run_against_model(
            make_acheron(
                delete_persistence_threshold=500,
                pages_per_tile=4,
                policy=CompactionStyle.LAZY_LEVELING,
            ),
            seed=12,
        )

    @pytest.mark.parametrize("seed", [6, 7])
    def test_acheron_leveling(self, seed):
        self._run_against_model(
            make_acheron(delete_persistence_threshold=500, pages_per_tile=4), seed
        )

    def test_acheron_tiering(self):
        self._run_against_model(
            make_acheron(
                delete_persistence_threshold=500,
                pages_per_tile=4,
                policy=CompactionStyle.TIERING,
            ),
            seed=8,
        )

    def test_acheron_with_cache(self):
        self._run_against_model(
            make_acheron(delete_persistence_threshold=800, cache_pages=32), seed=9
        )


class TestCrossEngineEquivalence:
    def test_all_variants_agree_on_one_stream(self):
        spec = mixed_spec()
        operations = list(WorkloadGenerator(spec).operations())
        reads = [op for op in operations if op.kind is OpKind.POINT_QUERY]
        engines = {
            "baseline-level": make_baseline(),
            "baseline-tier": make_baseline(policy=CompactionStyle.TIERING),
            "baseline-lazy": make_baseline(policy=CompactionStyle.LAZY_LEVELING),
            "acheron": make_acheron(delete_persistence_threshold=600, pages_per_tile=4),
        }
        views = {}
        for name, engine in engines.items():
            run_workload(engine, operations)
            views[name] = dict(engine.scan(-1, 10**12))
            for op in reads[::17]:
                pass  # the scan equality below subsumes point agreement
        assert (
            views["baseline-level"]
            == views["baseline-tier"]
            == views["baseline-lazy"]
            == views["acheron"]
        )


@pytest.mark.usefixtures("serial_write_path")  # claim shapes are defined on the serial schedule
class TestPaperClaimsAtTestScale:
    """Qualitative shape of the headline claims, small scale."""

    def _run(self, engine, spec):
        result = run_workload(engine, WorkloadGenerator(spec).operations())
        return result, engine.stats()

    def test_fade_bounds_latency_baseline_does_not(self):
        spec = mixed_spec(operations=3000, preload=1500, delete_fraction=0.2)
        d_th = 800
        __, base = self._run(make_baseline(), spec)
        __, ach = self._run(
            make_acheron(delete_persistence_threshold=d_th, pages_per_tile=1), spec
        )
        assert ach.persistence.violations == 0
        assert ach.persistence.compliant()
        base_worst = max(
            base.persistence.max_latency or 0,
            base.persistence.oldest_pending_age or 0,
        )
        ach_worst = max(
            ach.persistence.max_latency or 0,
            ach.persistence.oldest_pending_age or 0,
        )
        assert ach_worst <= d_th
        assert base_worst > d_th  # the baseline blows through the threshold

    def test_fade_pays_bounded_write_amplification(self):
        spec = mixed_spec(operations=3000, preload=1500, delete_fraction=0.2)
        __, base = self._run(make_baseline(), spec)
        __, ach = self._run(
            make_acheron(delete_persistence_threshold=2000, pages_per_tile=1), spec
        )
        base_wa = base.amplification.write_amplification
        ach_wa = ach.amplification.write_amplification
        assert ach_wa >= base_wa * 0.95  # delete-awareness is not free...
        assert ach_wa <= base_wa * 2.0  # ...but the overhead is bounded

    def test_fade_improves_space_amplification(self):
        spec = mixed_spec(operations=3000, preload=1500, delete_fraction=0.25)
        __, base = self._run(make_baseline(), spec)
        __, ach = self._run(
            make_acheron(delete_persistence_threshold=800, pages_per_tile=1), spec
        )
        assert (
            ach.amplification.space_amplification
            <= base.amplification.space_amplification
        )

    def test_kiwi_secondary_delete_is_orders_cheaper(self):
        woven = make_acheron(delete_persistence_threshold=50_000, pages_per_tile=4)
        baseline = make_baseline()
        for engine in (woven, baseline):
            for k in range(1500):
                engine.put((k * 37) % 1500, f"v{k}")
            engine.flush()
        cutoff = woven.clock.now() // 2
        kiwi_report = woven.delete_range(0, cutoff, method="kiwi")
        rewrite_report = baseline.delete_range(0, cutoff, method="full_rewrite")
        assert kiwi_report.io.total_pages * 3 < rewrite_report.io.total_pages

    def test_tombstone_pileup_slows_baseline_empty_queries(self):
        # After mass deletion, empty-range scans over the deleted region
        # cost the baseline real I/O; with FADE the region is purged.
        base = make_baseline()
        ach = make_acheron(delete_persistence_threshold=500, pages_per_tile=1)
        for engine in (base, ach):
            for k in range(1200):
                engine.put(k, k)
            for k in range(400, 800):
                engine.delete(k)
            engine.advance_time(600)
        def deleted_region_cost(engine):
            before = engine.disk.stats.pages_read
            for _ in range(3):
                assert list(engine.scan(400, 799)) == []
            return engine.disk.stats.pages_read - before

        assert deleted_region_cost(ach) <= deleted_region_cost(base)


class TestDurableIntegration:
    def test_mixed_workload_with_restart_in_the_middle(self, tmp_path):
        from repro.core.engine import AcheronEngine

        def opener():
            return AcheronEngine.acheron(
                delete_persistence_threshold=1000,
                pages_per_tile=4,
                directory=str(tmp_path),
                **TINY,
            )

        model = {}
        engine = opener()
        rng = random.Random(77)
        for i in range(1200):
            key = rng.randrange(300)
            if rng.random() < 0.7:
                engine.put(key, i)
                model[key] = i
            else:
                engine.delete(key)
                model.pop(key, None)
        engine.close()
        engine = opener()
        for i in range(1200, 2000):
            key = rng.randrange(300)
            if rng.random() < 0.7:
                engine.put(key, i)
                model[key] = i
            else:
                engine.delete(key)
                model.pop(key, None)
        assert dict(engine.scan(-1, 10**9)) == model
        engine.tree.check_invariants()
        engine.close()
