"""Unit tests for the logical clocks."""

import pytest

from repro.clock import AutoTickClock, LogicalClock


class TestLogicalClock:
    def test_starts_at_zero_by_default(self):
        assert LogicalClock().now() == 0

    def test_starts_at_given_tick(self):
        assert LogicalClock(start=42).now() == 42

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            LogicalClock(start=-1)

    def test_tick_advances_and_returns_new_time(self):
        clock = LogicalClock()
        assert clock.tick() == 1
        assert clock.tick(5) == 6
        assert clock.now() == 6

    def test_now_does_not_advance(self):
        clock = LogicalClock()
        clock.now()
        clock.now()
        assert clock.now() == 0

    def test_tick_rejects_negative(self):
        with pytest.raises(ValueError):
            LogicalClock().tick(-1)

    def test_tick_zero_is_a_noop(self):
        clock = LogicalClock(start=3)
        assert clock.tick(0) == 3

    def test_advance_to_moves_forward(self):
        clock = LogicalClock()
        assert clock.advance_to(10) == 10
        assert clock.now() == 10

    def test_advance_to_never_moves_backward(self):
        clock = LogicalClock(start=10)
        assert clock.advance_to(5) == 10
        assert clock.now() == 10


class TestAutoTickClock:
    def test_now_advances_by_step(self):
        clock = AutoTickClock(step=2)
        assert clock.now() == 0
        assert clock.now() == 2
        assert clock.now() == 4

    def test_zero_step_behaves_like_plain_clock(self):
        clock = AutoTickClock(step=0)
        assert clock.now() == 0
        assert clock.now() == 0

    def test_rejects_negative_step(self):
        with pytest.raises(ValueError):
            AutoTickClock(step=-1)

    def test_explicit_tick_still_works(self):
        clock = AutoTickClock(step=1)
        clock.tick(10)
        assert clock.now() == 10  # read returns 10, then bumps to 11
        assert clock.now() == 11
