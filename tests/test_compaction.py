"""Unit tests for compaction planning and execution."""

import pytest

from repro.config import CompactionStyle, FilePickPolicy, baseline_config
from repro.lsm.compaction.task import (
    CompactionReason,
    CompactionTask,
    OutputPlacement,
    TaskInput,
)
from repro.lsm.entry import Entry
from repro.lsm.run import FileIdAllocator, Run, build_files
from repro.lsm.tree import LSMTree

from conftest import TINY


def make_tree(**overrides):
    params = dict(TINY)
    params.update(overrides)
    return LSMTree(baseline_config(**params))


class TestTaskValidation:
    def _run(self):
        cfg = baseline_config(**TINY)
        files = build_files(
            [Entry.put(k, k, k + 1) for k in range(32)], cfg, FileIdAllocator(), 0
        )
        return Run(files)

    def test_task_needs_inputs(self):
        with pytest.raises(ValueError):
            CompactionTask(
                reason=CompactionReason.SATURATION,
                inputs=[],
                target_level=1,
                placement=OutputPlacement.NEW_RUN,
            )

    def test_task_rejects_bad_target(self):
        run = self._run()
        with pytest.raises(ValueError):
            CompactionTask(
                reason=CompactionReason.SATURATION,
                inputs=[TaskInput(1, run, list(run.files))],
                target_level=0,
                placement=OutputPlacement.NEW_RUN,
            )

    def test_input_files_must_belong_to_run(self):
        run = self._run()
        other = self._run()
        with pytest.raises(ValueError):
            TaskInput(1, run, [other.files[0]])

    def test_describe_mentions_levels(self):
        run = self._run()
        task = CompactionTask(
            reason=CompactionReason.SATURATION,
            inputs=[TaskInput(2, run, [run.files[0]])],
            target_level=3,
            placement=OutputPlacement.MERGE_INTO_TARGET_RUN,
            drop_tombstones=True,
        )
        text = task.describe()
        assert "L2" in text and "L3" in text and "drop" in text


class TestLevelingBehavior:
    def test_compaction_log_records_events(self):
        tree = make_tree()
        for k in range(300):
            tree.put(k, k)
        assert tree.compaction_log
        event = tree.compaction_log[0]
        assert event.reason == CompactionReason.LEVEL_COLLAPSE.value
        assert event.pages_written > 0

    def test_update_heavy_workload_reclaims_space(self):
        tree = make_tree()
        for _ in range(6):
            for k in range(100):
                tree.put(k, "x")
        # 600 ingested versions of 100 keys: compaction must have
        # discarded most duplicates.
        assert tree.entry_count_on_disk + len(tree.memtable) < 300

    def test_tombstones_dropped_only_at_bottom(self):
        tree = make_tree()
        for k in range(400):
            tree.put(k, k)
        for k in range(0, 400, 2):
            tree.delete(k)
        tree.flush()
        # Some tombstones may still be draining through upper levels, but
        # the bottom level must never store any.
        deepest = tree.deepest_nonempty_level()
        bottom = tree.level(deepest)
        for run in bottom.runs:
            # Bottom tombstones can exist in leveling only if a deeper
            # range never existed; with 400 keys over 3 levels the bottom
            # run's key span covers deleted keys, so:
            assert all(f.tombstone_count == 0 or deepest == 1 for f in run.files)

    def test_saturation_respects_capacity(self):
        tree = make_tree()
        for k in range(3000):
            tree.put(k, k)
        for level in tree.iter_levels():
            if not level.is_empty:
                assert level.entry_count <= tree.config.level_capacity_entries(level.index)

    def test_reads_correct_after_many_compactions(self):
        tree = make_tree()
        expected = {}
        for k in range(2500):
            key = k % 617
            tree.put(key, k)
            expected[key] = k
        for key, value in list(expected.items())[::13]:
            assert tree.get(key) == value


class TestFilePickPolicies:
    def _loaded_tree(self, pick):
        tree = make_tree(file_pick=pick)
        for k in range(1200):
            tree.put(k, k)
        for k in range(0, 300, 2):
            tree.delete(k)
        for k in range(1200, 1800):
            tree.put(k, k)
        return tree

    @pytest.mark.parametrize(
        "pick",
        [FilePickPolicy.MIN_OVERLAP, FilePickPolicy.TOMBSTONE_DENSITY, FilePickPolicy.OLDEST],
    )
    def test_all_policies_preserve_correctness(self, pick):
        tree = self._loaded_tree(pick)
        tree.check_invariants()
        assert tree.get(1) == 1
        assert tree.get(2) is None  # deleted
        assert tree.get(1500) == 1500

    def test_tombstone_density_drains_deletes_faster(self):
        dropped = {}
        for pick in (FilePickPolicy.MIN_OVERLAP, FilePickPolicy.TOMBSTONE_DENSITY):
            tree = self._loaded_tree(pick)
            dropped[pick] = sum(e.tombstones_dropped for e in tree.compaction_log)
        assert (
            dropped[FilePickPolicy.TOMBSTONE_DENSITY] >= dropped[FilePickPolicy.MIN_OVERLAP]
        )


class TestTieringBehavior:
    def make_tiering(self, **overrides):
        return make_tree(policy=CompactionStyle.TIERING, **overrides)

    def test_levels_hold_multiple_runs(self):
        tree = self.make_tiering()
        for k in range(200):
            tree.put(k, k)
        max_runs = max((lvl.run_count for lvl in tree.iter_levels()), default=0)
        assert 1 <= max_runs < tree.config.size_ratio

    def test_run_count_trigger(self):
        tree = self.make_tiering()
        for k in range(3000):
            tree.put(k, k)
        for level in tree.iter_levels():
            assert level.run_count < tree.config.size_ratio

    def test_reads_correct_with_overlapping_runs(self):
        tree = self.make_tiering()
        expected = {}
        for k in range(2000):
            key = k % 401
            tree.put(key, k)
            expected[key] = k
        for key in range(0, 401, 11):
            assert tree.get(key) == expected[key]

    def test_newest_run_is_probed_first(self):
        tree = self.make_tiering(memtable_entries=16)
        for k in range(16):
            tree.put(k, "old")
        for k in range(16):
            tree.put(k, "new")
        # Both runs are on disk at level 1 now; reads must see "new".
        assert tree.level(1).run_count >= 2 or tree.deepest_nonempty_level() > 1
        assert tree.get(3) == "new"

    def test_tiering_write_amp_lower_than_leveling(self):
        def ingest(tree):
            for k in range(4000):
                tree.put(k % 977, k)
            return tree.disk.stats.pages_written

        leveling_writes = ingest(make_tree())
        tiering_writes = ingest(self.make_tiering())
        assert tiering_writes < leveling_writes

    def test_invariants(self):
        tree = self.make_tiering()
        for k in range(1500):
            tree.put(k % 313, k)
            if k % 6 == 0:
                tree.delete((k * 5) % 313)
        tree.check_invariants()


class TestLazyLeveling:
    def make_lazy(self, **overrides):
        return make_tree(policy=CompactionStyle.LAZY_LEVELING, **overrides)

    def test_last_level_is_a_single_run(self):
        tree = self.make_lazy()
        for k in range(3000):
            tree.put(k, k)
        last = tree.deepest_nonempty_level()
        assert tree.level(last).run_count == 1

    def test_upper_levels_tier(self):
        tree = self.make_lazy()
        for k in range(3000):
            tree.put(k, k)
        last = tree.deepest_nonempty_level()
        for level in tree.iter_levels():
            if level.index < last:
                assert level.run_count < tree.config.size_ratio

    def test_relocations_are_free(self):
        tree = self.make_lazy()
        for k in range(3000):
            tree.put(k, k)
        relocations = [e for e in tree.compaction_log if e.reason == "relocation"]
        assert relocations, "growth must have relocated the last run at least once"
        for event in relocations:
            assert event.pages_read == 0
            assert event.pages_written == 0
            assert event.entries_in == event.entries_out

    def test_write_amp_sits_between_tiering_and_leveling(self):
        from repro.metrics.amplification import write_amplification

        def wa(policy):
            tree = make_tree(policy=policy)
            for i in range(6000):
                tree.put(i % 1500, i)
            return write_amplification(tree)

        leveling = wa(CompactionStyle.LEVELING)
        lazy = wa(CompactionStyle.LAZY_LEVELING)
        tiering = wa(CompactionStyle.TIERING)
        assert tiering <= lazy <= leveling

    def test_reads_correct(self):
        tree = self.make_lazy()
        expected = {}
        for k in range(2500):
            key = k % 613
            tree.put(key, k)
            expected[key] = k
        for key in range(0, 613, 7):
            assert tree.get(key) == expected[key]
        tree.check_invariants()

    def test_deletes_and_invariants(self):
        tree = self.make_lazy()
        for k in range(1500):
            tree.put(k % 311, k)
            if k % 5 == 0:
                tree.delete((k * 7) % 311)
        tree.check_invariants()
        assert dict(tree.scan(-1, 10**9))  # something survives


class TestTrivialMoveTask:
    def test_trivial_move_requires_single_input(self):
        cfg = baseline_config(**TINY)
        files = build_files(
            [Entry.put(k, k, k + 1) for k in range(200)], cfg, FileIdAllocator(), 0
        )
        run = Run(files)
        with pytest.raises(ValueError):
            CompactionTask(
                reason=CompactionReason.RELOCATION,
                inputs=[TaskInput(1, run, [files[0]]), TaskInput(1, run, [files[1]])],
                target_level=2,
                placement=OutputPlacement.NEW_RUN,
                trivial_move=True,
            )

    def test_trivial_move_cannot_drop_tombstones(self):
        cfg = baseline_config(**TINY)
        files = build_files(
            [Entry.put(k, k, k + 1) for k in range(32)], cfg, FileIdAllocator(), 0
        )
        run = Run(files)
        with pytest.raises(ValueError):
            CompactionTask(
                reason=CompactionReason.RELOCATION,
                inputs=[TaskInput(1, run, list(files))],
                target_level=2,
                placement=OutputPlacement.NEW_RUN,
                trivial_move=True,
                drop_tombstones=True,
            )

    def test_trivial_move_rejects_overlap_at_target(self):
        from repro.lsm.compaction.executor import execute_task

        tree = make_tree()
        cfg = tree.config
        upper = Run(
            build_files(
                [Entry.put(k, k, k + 1) for k in range(0, 100)],
                cfg,
                tree.file_ids,
                0,
            )
        )
        lower = Run(
            build_files(
                [Entry.put(k, k, 200 + k) for k in range(50, 150)],
                cfg,
                tree.file_ids,
                0,
            )
        )
        tree.level(1).add_newest_run(upper)
        tree.level(2).add_newest_run(lower)
        task = CompactionTask(
            reason=CompactionReason.RELOCATION,
            inputs=[TaskInput(1, upper, list(upper.files))],
            target_level=2,
            placement=OutputPlacement.NEW_RUN,
            trivial_move=True,
        )
        with pytest.raises(AssertionError):
            execute_task(task, tree)

    def test_trivial_move_to_clear_target_succeeds(self):
        from repro.lsm.compaction.executor import execute_task

        tree = make_tree()
        run = Run(
            build_files(
                [Entry.put(k, k, k + 1) for k in range(100)],
                tree.config,
                tree.file_ids,
                0,
            )
        )
        tree.level(1).add_newest_run(run)
        before = tree.disk.snapshot()
        event = execute_task(
            CompactionTask(
                reason=CompactionReason.RELOCATION,
                inputs=[TaskInput(1, run, list(run.files))],
                target_level=2,
                placement=OutputPlacement.NEW_RUN,
                trivial_move=True,
            ),
            tree,
        )
        delta = tree.disk.delta_since(before)
        assert delta.total_pages == 0
        assert event.pages_read == 0 and event.pages_written == 0
        assert tree.level(1).is_empty
        assert tree.level(2).entry_count == 100
        assert tree.get(42) == 42


class TestCompactionGranularity:
    def test_level_granularity_merges_whole_levels(self):
        from repro.config import CompactionGranularity

        tree = make_tree(granularity=CompactionGranularity.LEVEL)
        for k in range(2000):
            tree.put(k, k)
        saturations = [e for e in tree.compaction_log if e.reason == "saturation"]
        assert saturations
        # Whole-level merges move far more entries per compaction than the
        # per-file default would (one file is <= 64 entries at TINY scale).
        assert max(e.entries_in for e in saturations) > 3 * tree.config.file_entry_limit
        tree.check_invariants()
        for level in tree.iter_levels():
            assert level.run_count <= 1

    def test_level_granularity_correctness(self):
        from repro.config import CompactionGranularity

        tree = make_tree(granularity=CompactionGranularity.LEVEL)
        expected = {}
        for k in range(2500):
            key = k % 617
            tree.put(key, k)
            expected[key] = k
            if k % 9 == 0:
                victim = (k * 3) % 617
                tree.delete(victim)
                expected.pop(victim, None)
        assert dict(tree.scan(-1, 10**9)) == expected

    def test_level_granularity_has_higher_write_amp(self):
        from repro.config import CompactionGranularity
        from repro.metrics.amplification import write_amplification

        def wa(**kw):
            tree = make_tree(**kw)
            for k in range(5000):
                tree.put(k, k)  # fresh keys: file granularity can trivially move
            return write_amplification(tree)

        assert wa(granularity=CompactionGranularity.LEVEL) > wa()


class TestTrivialMovesInTheWild:
    def test_sequential_ingest_produces_trivial_moves(self):
        # Monotonically growing keys never overlap deeper levels, so with
        # trivial moves enabled most saturation moves are free.
        tree = make_tree(trivial_moves=True)
        for k in range(3000):
            tree.put(k, k)
        free_moves = [
            e
            for e in tree.compaction_log
            if e.reason == "saturation" and e.pages_read == 0 and e.pages_written == 0
        ]
        assert free_moves, "sequential ingest should trigger trivial moves"
        tree.check_invariants()

    def test_trivial_moves_reduce_write_amp_on_sequential_ingest(self):
        from repro.metrics.amplification import write_amplification

        def wa(flag):
            tree = make_tree(trivial_moves=flag)
            for k in range(4000):
                tree.put(k, k)
            return write_amplification(tree)

        assert wa(True) < wa(False)

    def test_trivial_moves_never_skip_a_due_purge(self):
        # A file with tombstones moving into the bottommost level must be
        # rewritten (to purge), never trivially moved.
        tree = make_tree(trivial_moves=True)
        for k in range(1200):
            tree.put(k, k)
        for k in range(0, 1200, 2):
            tree.delete(k)
        for k in range(1200, 3000):
            tree.put(k, k)
        deepest = tree.deepest_nonempty_level()
        bottom_tombstones = sum(
            f.tombstone_count for f in tree.level(deepest).iter_files()
        )
        assert bottom_tombstones == 0


class TestExecutorEdgeCases:
    def test_compaction_with_empty_output(self):
        # A bottom merge whose inputs are exclusively tombstones (their
        # puts already purged) produces no output files at all.
        from repro.lsm.compaction.executor import execute_task

        tree = make_tree()
        cfg = tree.config
        tombs = [Entry.tombstone(k, 1000 + k, write_time=k) for k in range(40)]
        run = Run(build_files(tombs, cfg, tree.file_ids, 0))
        tree.level(1).add_newest_run(run)
        task = CompactionTask(
            reason=CompactionReason.LEVEL_COLLAPSE,
            inputs=[TaskInput(1, run, list(run.files))],
            target_level=1,
            placement=OutputPlacement.NEW_RUN,
            drop_tombstones=True,
        )
        event = execute_task(task, tree)
        assert event.entries_out == 0
        assert event.tombstones_dropped == 40
        assert event.output_file_ids == ()
        assert tree.level(1).is_empty

    def test_trivial_move_into_existing_leveled_run(self):
        from repro.lsm.compaction.executor import execute_task

        tree = make_tree()
        cfg = tree.config
        moving = Run(build_files([Entry.put(k, k, k + 1) for k in range(50)], cfg, tree.file_ids, 0))
        resident = Run(
            build_files([Entry.put(k, k, 500 + k) for k in range(100, 150)], cfg, tree.file_ids, 0)
        )
        tree.level(1).add_newest_run(moving)
        tree.level(2).add_newest_run(resident)
        event = execute_task(
            CompactionTask(
                reason=CompactionReason.SATURATION,
                inputs=[TaskInput(1, moving, list(moving.files))],
                target_level=2,
                placement=OutputPlacement.MERGE_INTO_TARGET_RUN,
                trivial_move=True,
            ),
            tree,
        )
        assert event.pages_read == 0 and event.pages_written == 0
        assert tree.level(2).run_count == 1
        assert tree.level(2).entry_count == 100
        assert tree.get(10) == 10 and tree.get(120) == 120

    def test_compaction_event_reports_superseded_tombstones(self):
        from repro.lsm.compaction.executor import execute_task

        tree = make_tree()
        cfg = tree.config
        old = Run(build_files([Entry.tombstone(k, k + 1, write_time=0) for k in range(20)], cfg, tree.file_ids, 0))
        new = Run(build_files([Entry.put(k, "revived", 100 + k) for k in range(20)], cfg, tree.file_ids, 0))
        tree.level(1).add_newest_run(old)
        tree.level(1).add_newest_run(new)
        task = CompactionTask(
            reason=CompactionReason.LEVEL_COLLAPSE,
            inputs=[TaskInput(1, run, list(run.files)) for run in tree.level(1).runs],
            target_level=1,
            placement=OutputPlacement.NEW_RUN,
            drop_tombstones=True,
        )
        event = execute_task(task, tree)
        assert event.tombstones_superseded == 20
        assert event.tombstones_dropped == 0
        assert all(tree.get(k) == "revived" for k in range(20))
