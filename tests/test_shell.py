"""Tests for the interactive demo shell."""

import io

from repro.demo.shell import DemoShell

from conftest import make_acheron, make_baseline


def run_lines(engine, lines):
    shell = DemoShell(engine, name="t")
    out = io.StringIO()
    shell.run(lines, out)
    return out.getvalue()


def exec_one(engine, line):
    return DemoShell(engine).execute(line)


class TestCommands:
    def test_put_get_roundtrip(self):
        engine = make_acheron()
        out = run_lines(engine, ["put 7 seven", "get 7", "quit"])
        assert "'seven'" in out

    def test_string_keys(self):
        engine = make_acheron()
        out = run_lines(engine, ["put user:1 alice smith", "get user:1", "quit"])
        assert "'alice smith'" in out

    def test_get_missing(self):
        engine = make_acheron()
        output, _ = exec_one(engine, "get 404")
        assert output == "(not found)"

    def test_delete_reports_threshold(self):
        engine = make_acheron(delete_persistence_threshold=777)
        engine.put(1, "x")
        output, _ = exec_one(engine, "del 1")
        assert "777" in output
        assert engine.get(1) is None

    def test_delete_on_baseline_warns_no_guarantee(self):
        engine = make_baseline()
        engine.put(1, "x")
        output, _ = exec_one(engine, "del 1")
        assert "no persistence guarantee" in output

    def test_scan(self):
        engine = make_acheron()
        for k in range(10):
            engine.put(k, k)
        output, _ = exec_one(engine, "scan 2 5")
        assert "2 -> 2" in output and "5 -> 5" in output

    def test_scan_empty(self):
        output, _ = exec_one(make_acheron(), "scan 0 10")
        assert output == "(empty)"

    def test_purge_older_than(self):
        engine = make_acheron()
        for k in range(300):
            engine.put(k, k)
        output, _ = exec_one(engine, "purge-older-than 100")
        assert "deleted" in output
        assert engine.get(0) is None

    def test_wait_advances_clock(self):
        engine = make_acheron()
        output, _ = exec_one(engine, "wait 123")
        assert "tick 123" in output

    def test_dashboards(self):
        engine = make_acheron()
        engine.put(1, "x")
        for command, fragment in [
            ("levels", "tree @"),
            ("persistence", "delete lifecycle"),
            ("io", "device I/O"),
            ("history", "compactions"),
            ("help", "commands:"),
        ]:
            output, keep = exec_one(engine, command)
            assert fragment in output, command
            assert keep

    def test_flush_and_compact(self):
        engine = make_acheron()
        engine.put(1, "x")
        assert exec_one(engine, "flush")[0] == "flushed"
        assert "done" in exec_one(engine, "compact")[0]
        assert engine.tree.entry_count_on_disk == 1


class TestLoop:
    def test_unknown_command_keeps_running(self):
        output, keep = exec_one(make_acheron(), "frobnicate")
        assert "unknown command" in output
        assert keep

    def test_blank_lines_ignored(self):
        output, keep = exec_one(make_acheron(), "   ")
        assert output == "" and keep

    def test_errors_are_surfaced_not_fatal(self):
        output, keep = exec_one(make_acheron(), "wait not-a-number")
        assert output.startswith("error:")
        assert keep

    def test_quit_stops(self):
        out = run_lines(make_acheron(), ["put 1 x", "quit", "get 1"])
        assert out.count("bye") == 1
        assert "'x'" not in out  # the get after quit never ran

    def test_eof_terminates_cleanly(self):
        out = run_lines(make_acheron(), ["put 1 x"])
        assert out.strip().endswith("bye")

    def test_usage_messages(self):
        engine = make_acheron()
        for line in ("put onlykey", "get", "del", "scan 1", "purge-older-than", "wait"):
            output, _ = exec_one(engine, line)
            assert output.startswith("usage:"), line
