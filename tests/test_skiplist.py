"""Unit and property tests for the skip list."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.skiplist import SkipList


class TestBasics:
    def test_empty(self):
        sl = SkipList()
        assert len(sl) == 0
        assert sl.get(1) is None
        assert 1 not in sl
        assert sl.min_key() is None
        assert sl.max_key() is None
        assert list(sl.items()) == []

    def test_insert_and_get(self):
        sl = SkipList()
        assert sl.insert(5, "five") is None
        assert sl.get(5) == "five"
        assert 5 in sl
        assert len(sl) == 1

    def test_insert_replaces_in_place(self):
        sl = SkipList()
        sl.insert(5, "old")
        assert sl.insert(5, "new") == "old"
        assert sl.get(5) == "new"
        assert len(sl) == 1

    def test_get_default(self):
        sl = SkipList()
        assert sl.get(9, default="fallback") == "fallback"

    def test_items_are_key_ordered(self):
        sl = SkipList()
        for key in [7, 3, 9, 1, 5]:
            sl.insert(key, key * 10)
        assert list(sl.items()) == [(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]

    def test_min_max(self):
        sl = SkipList()
        for key in [7, 3, 9]:
            sl.insert(key, None)
        assert sl.min_key() == 3
        assert sl.max_key() == 9

    def test_remove(self):
        sl = SkipList()
        for key in range(10):
            sl.insert(key, key)
        assert sl.remove(4) is True
        assert sl.remove(4) is False
        assert 4 not in sl
        assert len(sl) == 9
        sl.check_invariants()

    def test_clear(self):
        sl = SkipList()
        sl.insert(1, "a")
        sl.clear()
        assert len(sl) == 0
        assert list(sl.items()) == []

    def test_items_from(self):
        sl = SkipList()
        for key in range(0, 20, 2):
            sl.insert(key, key)
        assert [k for k, _ in sl.items_from(7)] == [8, 10, 12, 14, 16, 18]
        assert [k for k, _ in sl.items_from(8)] == [8, 10, 12, 14, 16, 18]

    def test_range_items_inclusive_both_ends(self):
        sl = SkipList()
        for key in range(10):
            sl.insert(key, key)
        assert [k for k, _ in sl.range_items(3, 6)] == [3, 4, 5, 6]

    def test_range_items_empty_interval(self):
        sl = SkipList()
        sl.insert(5, 5)
        assert list(sl.range_items(6, 9)) == []

    def test_string_keys(self):
        sl = SkipList()
        for key in ["pear", "apple", "mango"]:
            sl.insert(key, key.upper())
        assert [k for k, _ in sl.items()] == ["apple", "mango", "pear"]

    def test_deterministic_for_same_seed(self):
        a, b = SkipList(seed=3), SkipList(seed=3)
        for key in range(100):
            a.insert(key, key)
            b.insert(key, key)
        assert list(a.items()) == list(b.items())


class TestProperties:
    @given(st.lists(st.tuples(st.integers(-1000, 1000), st.integers())))
    @settings(max_examples=60)
    def test_behaves_like_a_dict(self, pairs):
        sl = SkipList()
        model: dict[int, int] = {}
        for key, value in pairs:
            sl.insert(key, value)
            model[key] = value
        assert len(sl) == len(model)
        assert list(sl.items()) == sorted(model.items())
        sl.check_invariants()

    @given(
        st.lists(st.integers(0, 200), min_size=1),
        st.lists(st.integers(0, 200)),
    )
    @settings(max_examples=60)
    def test_insert_then_remove_matches_set_model(self, inserts, removals):
        sl = SkipList()
        model: set[int] = set()
        for key in inserts:
            sl.insert(key, key)
            model.add(key)
        for key in removals:
            assert sl.remove(key) == (key in model)
            model.discard(key)
        assert sorted(model) == [k for k, _ in sl.items()]
        sl.check_invariants()

    @given(st.lists(st.integers(0, 100), min_size=1), st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=60)
    def test_range_matches_sorted_filter(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        sl = SkipList()
        for key in keys:
            sl.insert(key, key)
        expected = sorted(k for k in set(keys) if lo <= k <= hi)
        assert [k for k, _ in sl.range_items(lo, hi)] == expected
