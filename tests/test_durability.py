"""Durability and recovery tests: the engine must survive restarts and
crash shapes with its exact logical state."""

import pytest

from repro.config import acheron_config, baseline_config
from repro.lsm.tree import LSMTree
from repro.storage.filestore import FileStore

from conftest import TINY


def durable_config(**overrides):
    params = dict(TINY)
    params.update(overrides)
    return baseline_config(**params)


class TestReopen:
    def test_clean_close_and_reopen_preserves_data(self, tmp_path):
        config = durable_config()
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(500):
                tree.put(k, f"v{k}")
            for k in range(0, 100, 2):
                tree.delete(k)
        reopened = LSMTree.open(config, tmp_path)
        for k in range(0, 100, 2):
            assert reopened.get(k) is None
        for k in range(1, 100, 2):
            assert reopened.get(k) == f"v{k}"
        assert reopened.get(400) == "v400"
        reopened.check_invariants()

    def test_reopen_preserves_scan_results(self, tmp_path):
        config = durable_config()
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(300):
                tree.put(k, k * 2)
            expected = list(tree.scan(50, 150))
        reopened = LSMTree.open(config, tmp_path)
        assert list(reopened.scan(50, 150)) == expected

    def test_reopen_restores_clock_and_seqnos(self, tmp_path):
        config = durable_config()
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(200):
                tree.put(k, k)
            tick = tree.clock.now()
        reopened = LSMTree.open(config, tmp_path)
        assert reopened.clock.now() >= tick
        # New writes must win over everything recovered.
        reopened.put(0, "fresh")
        assert reopened.get(0) == "fresh"

    def test_unflushed_writes_recovered_from_wal(self, tmp_path):
        config = durable_config()
        tree = LSMTree.open(config, tmp_path)
        for k in range(30):  # well under the 64-entry buffer: no flush
            tree.put(k, f"v{k}")
        tree.delete(3)
        # Simulate a crash: no close(), no flush.
        del tree
        recovered = LSMTree.open(config, tmp_path)
        assert recovered.get(5) == "v5"
        assert recovered.get(3) is None
        assert len(recovered.memtable) == 30

    def test_torn_wal_tail_loses_only_the_last_write(self, tmp_path):
        config = durable_config()
        tree = LSMTree.open(config, tmp_path)
        for k in range(20):
            tree.put(k, f"v{k}")
        del tree
        store = FileStore(tmp_path)
        data = store.wal_path.read_bytes()
        store.wal_path.write_bytes(data[:-4])  # crash mid-append
        recovered = LSMTree.open(config, tmp_path)
        assert len(recovered.memtable) == 19
        assert recovered.get(18) == "v18"
        assert recovered.get(19) is None

    def test_kiwi_layout_survives_restart(self, tmp_path):
        params = dict(TINY)
        config = acheron_config(
            delete_persistence_threshold=5_000, pages_per_tile=4, **params
        )
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(400):
                tree.put((k * 37) % 400, f"v{k}")
        reopened = LSMTree.open(config, tmp_path)
        for level in reopened.iter_levels():
            for run in level.runs:
                for file in run.files:
                    file.check_invariants()
        # The weave (multi-page tiles) must survive serialization.
        tiles = [
            tile
            for level in reopened.iter_levels()
            for run in level.runs
            for file in run.files
            for tile in file.tiles
        ]
        assert any(len(tile.pages) > 1 for tile in tiles)

    def test_fade_deadlines_rebuilt_after_restart(self, tmp_path):
        params = dict(TINY)
        config = acheron_config(
            delete_persistence_threshold=2_000, pages_per_tile=1, **params
        )
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(800):
                tree.put(k, k)
            for k in range(0, 800, 2):
                tree.delete(k)
        reopened = LSMTree.open(config, tmp_path)
        if reopened.tombstone_count_on_disk:
            assert reopened.fade.tracked_file_count() > 0
        # Deadlines must still be honored after restart.
        reopened.advance_time(2_500)
        assert reopened.tombstone_count_on_disk == 0

    def test_wal_tombstones_reregister_with_listener(self, tmp_path):
        from repro.core.persistence import PersistenceTracker

        config = durable_config()
        tree = LSMTree.open(config, tmp_path)
        tree.put(1, "x")
        tree.delete(1)
        del tree  # crash with the tombstone only in the WAL
        tracker = PersistenceTracker(threshold=10_000)
        recovered = LSMTree.open(config, tmp_path, listener=tracker)
        assert tracker.registered_count == 1
        assert tracker.pending_count == 1
        recovered.close()


class TestStoreHygiene:
    def test_no_orphan_sstables_after_compactions(self, tmp_path):
        config = durable_config()
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(1500):
                tree.put(k % 400, k)
        store = FileStore(tmp_path)
        manifest = store.read_manifest()
        live = {fid for runs in manifest["levels"] for run in runs for fid in run}
        on_disk = set(store.list_sstable_ids())
        assert on_disk == live

    def test_manifest_tracks_next_file_id(self, tmp_path):
        config = durable_config()
        tree = LSMTree.open(config, tmp_path)
        for k in range(300):
            tree.put(k, k)
        tree.close()  # close flushes the buffer, allocating further ids
        next_id = tree.file_ids.peek()
        manifest = FileStore(tmp_path).read_manifest()
        assert manifest["next_file_id"] == next_id
        reopened = LSMTree.open(config, tmp_path)
        # New files must not collide with recovered ones.
        assert reopened.file_ids.peek() >= next_id

    def test_two_directories_are_independent(self, tmp_path):
        config = durable_config()
        with LSMTree.open(config, tmp_path / "a") as a:
            a.put(1, "a-data")
        with LSMTree.open(config, tmp_path / "b") as b:
            b.put(1, "b-data")
        assert LSMTree.open(config, tmp_path / "a").get(1) == "a-data"
        assert LSMTree.open(config, tmp_path / "b").get(1) == "b-data"

    def test_secondary_delete_persists_across_restart(self, tmp_path):
        from repro.core.kiwi import kiwi_range_delete

        params = dict(TINY)
        config = acheron_config(
            delete_persistence_threshold=50_000, pages_per_tile=4, **params
        )
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(400):
                tree.put(k, f"v{k}")
            cutoff = tree.clock.now() // 2
            kiwi_range_delete(tree, 0, cutoff)
            survivors = dict(tree.scan(0, 10_000))
        reopened = LSMTree.open(config, tmp_path)
        assert dict(reopened.scan(0, 10_000)) == survivors


class TestReadOnlyOpen:
    def _built(self, tmp_path):
        config = durable_config()
        tree = LSMTree.open(config, tmp_path)
        for k in range(300):
            tree.put(k, f"v{k}")
        for k in range(200, 230):  # leave entries in the WAL
            tree.put(k, "buffered")
        tree._wal.close()  # crash
        return config

    def test_reads_work_mutations_raise(self, tmp_path):
        from repro.errors import EngineClosedError

        config = self._built(tmp_path)
        tree = LSMTree.open(config, tmp_path, read_only=True)
        assert tree.get(5) == "v5"
        assert tree.get(205) == "buffered"  # WAL replayed into memory
        assert list(tree.scan(0, 3))
        with pytest.raises(EngineClosedError):
            tree.put(1, "nope")
        with pytest.raises(EngineClosedError):
            tree.delete(1)
        with pytest.raises(EngineClosedError):
            tree.flush()
        with pytest.raises(EngineClosedError):
            tree.advance_time(10)
        with pytest.raises(EngineClosedError):
            tree.full_compaction()

    def test_read_only_open_leaves_store_untouched(self, tmp_path):
        import hashlib

        config = self._built(tmp_path)

        def fingerprint():
            digest = hashlib.sha256()
            for path in sorted(p for p in tmp_path.iterdir() if p.is_file()):
                digest.update(path.name.encode())
                digest.update(path.read_bytes())
            return digest.hexdigest()

        before = fingerprint()
        tree = LSMTree.open(config, tmp_path, read_only=True)
        tree.get(5)
        list(tree.scan(0, 100))
        tree.close()
        assert fingerprint() == before

    def test_engine_facade_read_only(self, tmp_path):
        from repro.core.engine import AcheronEngine
        from repro.errors import ConfigError, EngineClosedError

        self._built(tmp_path)
        engine = AcheronEngine(config=None, directory=str(tmp_path), read_only=True)
        assert engine.get(5) == "v5"
        with pytest.raises(EngineClosedError):
            engine.put(1, "x")
        engine.close()
        with pytest.raises(ConfigError):
            AcheronEngine(read_only=True)  # no directory: meaningless


class TestHardenedRecovery:
    """The crash-safety hardening: corrupt-file handling, degraded mode,
    recovered tombstone ages, and the write-ordering regressions."""

    def _flushed_store(self, tmp_path, config=None):
        config = config or durable_config()
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(400):
                tree.put(k, f"v{k}")
        return config

    def test_torn_tail_sstable_detected_at_open(self, tmp_path):
        from repro.errors import CorruptionError

        config = self._flushed_store(tmp_path)
        store = FileStore(tmp_path)
        victim = store.list_sstable_ids()[0]
        path = store.sstable_path(victim)
        path.write_bytes(path.read_bytes()[:-7])  # torn mid-write
        with pytest.raises(CorruptionError):
            LSMTree.open(config, tmp_path)

    def test_mid_file_corruption_detected_at_open(self, tmp_path):
        from repro.errors import CorruptionError

        config = self._flushed_store(tmp_path)
        store = FileStore(tmp_path)
        victim = store.list_sstable_ids()[0]
        path = store.sstable_path(victim)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x10
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptionError):
            LSMTree.open(config, tmp_path)

    def test_degraded_open_salvages_the_readable_rest(self, tmp_path):
        config = self._flushed_store(tmp_path)
        store = FileStore(tmp_path)
        victim = store.list_sstable_ids()[0]
        path = store.sstable_path(victim)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x10
        path.write_bytes(bytes(data))
        tree = LSMTree.open(config, tmp_path, degraded_ok=True)
        assert tree.degraded
        assert tree.recovery_errors
        # Mutations refuse; reads over the surviving files still work.
        from repro.errors import EngineClosedError

        with pytest.raises(EngineClosedError):
            tree.put(9_999, "nope")
        salvaged = sum(1 for k in range(400) if tree.get(k) is not None)
        assert 0 < salvaged < 400

    def test_startup_sweeps_orphan_temp_files(self, tmp_path):
        config = self._flushed_store(tmp_path)
        junk = tmp_path / "sstable-000099.json.tmp"
        junk.write_text("half a publication")
        tree = LSMTree.open(config, tmp_path)
        assert not junk.exists()
        assert any("temp" in line for line in tree.recovery_log)
        tree.close()

    def test_startup_garbage_collects_unreferenced_sstables(self, tmp_path):
        config = self._flushed_store(tmp_path)
        store = FileStore(tmp_path)
        # A flush that crashed after publishing its file but before the
        # manifest: the file exists, nothing references it.
        store.write_sstable(4_242, [[[]]], {"created_at": 0})
        tree = LSMTree.open(config, tmp_path)
        assert 4_242 not in FileStore(tmp_path).list_sstable_ids()
        assert any("garbage-collected" in line for line in tree.recovery_log)
        tree.close()

    def test_pending_tombstone_ages_rebuilt_after_restart(self, tmp_path):
        from repro.core.persistence import PersistenceTracker

        params = dict(TINY)
        config = acheron_config(
            delete_persistence_threshold=50_000, pages_per_tile=4, **params
        )
        tracker = PersistenceTracker(threshold=50_000)
        tree = LSMTree.open(config, tmp_path, listener=tracker)
        for k in range(200):
            tree.put(k, f"v{k}")
        for k in range(0, 60, 3):
            tree.delete(k)
        tree.flush()  # tombstones reach disk, far from persisting (D_th huge)
        for k in range(60, 80, 4):
            tree.delete(k)  # and a few only in the WAL
        before = set(tracker.pending_items())
        assert before
        now = tree.clock.now()
        ages_before = tracker.pending_ages(now)
        del tree  # crash

        fresh = PersistenceTracker(threshold=50_000)
        recovered = LSMTree.open(config, tmp_path, listener=fresh)
        assert set(fresh.pending_items()) == before
        # Ages anchor on the original write ticks, not the reopen tick.
        assert fresh.pending_ages(now) == ages_before
        assert fresh.pending_ages(recovered.clock.now()) >= ages_before
        recovered.close()

    def test_compaction_manifest_does_not_eat_buffered_writes(self, tmp_path):
        """Regression: a compaction publishes a manifest whose global seqno
        covers buffered entries; replay must filter on the *flushed* mark
        or those acknowledged writes vanish on the next recovery."""
        config = durable_config()
        tree = LSMTree.open(config, tmp_path)
        for k in range(300):
            tree.put(k, f"v{k}")
        tree.flush()
        for k in range(300, 330):
            tree.put(k, f"buffered{k}")  # in memtable + WAL only
        tree.full_compaction()  # flushes, merges, publishes a manifest
        for k in range(330, 350):
            tree.put(k, f"buffered{k}")  # buffered again, after the manifest
        del tree  # crash before any further flush
        recovered = LSMTree.open(config, tmp_path)
        for k in range(330, 350):
            assert recovered.get(k) == f"buffered{k}", k
        recovered.close()

    def test_range_delete_purges_buffered_values_durably(self, tmp_path):
        """Regression: a secondary delete removes matching memtable entries;
        the WAL must be rewritten or a crash resurrects them."""
        from repro.core.kiwi import kiwi_range_delete

        params = dict(TINY)
        config = acheron_config(
            delete_persistence_threshold=50_000, pages_per_tile=4, **params
        )
        tree = LSMTree.open(config, tmp_path)
        for k in range(200):
            tree.put(k, f"v{k}")
        tree.flush()
        for k in range(200, 230):
            tree.put(k, f"buffered{k}")  # buffered, delete keys = now-ish ticks
        lo, hi = 0, tree.clock.now()
        report = kiwi_range_delete(tree, lo, hi)
        assert report.memtable_entries_deleted > 0
        survivors = dict(tree.scan(0, 10_000))
        del tree  # crash: recovery must not resurrect the purged values
        recovered = LSMTree.open(config, tmp_path)
        assert dict(recovered.scan(0, 10_000)) == survivors
        for k in range(200, 230):
            assert recovered.get(k) is None
        recovered.close()

    def test_wal_rotation_is_crash_safe_on_flush(self, tmp_path):
        """A crash at any rotation step leaves either the old complete log
        (filtered as duplicates on replay) or the fresh one."""
        from repro.storage.faults import FaultInjector, SimulatedCrash
        from repro.storage import faults as fp

        config = durable_config()
        inj = FaultInjector()
        tree = LSMTree.open(config, tmp_path, faults=inj)
        for k in range(50):
            tree.put(k, f"v{k}")
        inj.arm(fp.WAL_ROTATE_RENAME, fp.CRASH)
        with pytest.raises(SimulatedCrash):
            tree.flush()  # manifest publishes, then rotation crashes
        del tree
        recovered = LSMTree.open(config, tmp_path)
        # Old WAL records replay but are filtered: no duplicates, no loss.
        for k in range(50):
            assert recovered.get(k) == f"v{k}"
        assert any("skipped" in line for line in recovered.recovery_log)
        recovered.verify_invariants()
        recovered.close()

    def test_verify_invariants_passes_on_healthy_tree(self, tmp_path):
        config = durable_config()
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(500):
                tree.put(k % 120, k)
            tree.verify_invariants()
        LSMTree.open(config, tmp_path).verify_invariants()

    def test_verify_invariants_catches_corrupted_accounting(self, tmp_path):
        from repro.errors import InvariantViolationError

        config = durable_config()
        tree = LSMTree.open(config, tmp_path)
        for k in range(500):
            tree.put(k, k)
        level = next(lvl for lvl in tree.iter_levels() if lvl.runs)
        level.entry_count += 7  # sabotage the cached accounting
        with pytest.raises(InvariantViolationError):
            tree.verify_invariants()
