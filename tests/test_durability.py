"""Durability and recovery tests: the engine must survive restarts and
crash shapes with its exact logical state."""

import pytest

from repro.config import acheron_config, baseline_config
from repro.lsm.tree import LSMTree
from repro.storage.filestore import FileStore

from conftest import TINY


def durable_config(**overrides):
    params = dict(TINY)
    params.update(overrides)
    return baseline_config(**params)


class TestReopen:
    def test_clean_close_and_reopen_preserves_data(self, tmp_path):
        config = durable_config()
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(500):
                tree.put(k, f"v{k}")
            for k in range(0, 100, 2):
                tree.delete(k)
        reopened = LSMTree.open(config, tmp_path)
        for k in range(0, 100, 2):
            assert reopened.get(k) is None
        for k in range(1, 100, 2):
            assert reopened.get(k) == f"v{k}"
        assert reopened.get(400) == "v400"
        reopened.check_invariants()

    def test_reopen_preserves_scan_results(self, tmp_path):
        config = durable_config()
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(300):
                tree.put(k, k * 2)
            expected = list(tree.scan(50, 150))
        reopened = LSMTree.open(config, tmp_path)
        assert list(reopened.scan(50, 150)) == expected

    def test_reopen_restores_clock_and_seqnos(self, tmp_path):
        config = durable_config()
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(200):
                tree.put(k, k)
            tick = tree.clock.now()
        reopened = LSMTree.open(config, tmp_path)
        assert reopened.clock.now() >= tick
        # New writes must win over everything recovered.
        reopened.put(0, "fresh")
        assert reopened.get(0) == "fresh"

    def test_unflushed_writes_recovered_from_wal(self, tmp_path):
        config = durable_config()
        tree = LSMTree.open(config, tmp_path)
        for k in range(30):  # well under the 64-entry buffer: no flush
            tree.put(k, f"v{k}")
        tree.delete(3)
        # Simulate a crash: no close(), no flush.
        del tree
        recovered = LSMTree.open(config, tmp_path)
        assert recovered.get(5) == "v5"
        assert recovered.get(3) is None
        assert len(recovered.memtable) == 30

    def test_torn_wal_tail_loses_only_the_last_write(self, tmp_path):
        config = durable_config()
        tree = LSMTree.open(config, tmp_path)
        for k in range(20):
            tree.put(k, f"v{k}")
        del tree
        store = FileStore(tmp_path)
        data = store.wal_path.read_bytes()
        store.wal_path.write_bytes(data[:-4])  # crash mid-append
        recovered = LSMTree.open(config, tmp_path)
        assert len(recovered.memtable) == 19
        assert recovered.get(18) == "v18"
        assert recovered.get(19) is None

    def test_kiwi_layout_survives_restart(self, tmp_path):
        params = dict(TINY)
        config = acheron_config(
            delete_persistence_threshold=5_000, pages_per_tile=4, **params
        )
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(400):
                tree.put((k * 37) % 400, f"v{k}")
        reopened = LSMTree.open(config, tmp_path)
        for level in reopened.iter_levels():
            for run in level.runs:
                for file in run.files:
                    file.check_invariants()
        # The weave (multi-page tiles) must survive serialization.
        tiles = [
            tile
            for level in reopened.iter_levels()
            for run in level.runs
            for file in run.files
            for tile in file.tiles
        ]
        assert any(len(tile.pages) > 1 for tile in tiles)

    def test_fade_deadlines_rebuilt_after_restart(self, tmp_path):
        params = dict(TINY)
        config = acheron_config(
            delete_persistence_threshold=2_000, pages_per_tile=1, **params
        )
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(800):
                tree.put(k, k)
            for k in range(0, 800, 2):
                tree.delete(k)
        reopened = LSMTree.open(config, tmp_path)
        if reopened.tombstone_count_on_disk:
            assert reopened.fade.tracked_file_count() > 0
        # Deadlines must still be honored after restart.
        reopened.advance_time(2_500)
        assert reopened.tombstone_count_on_disk == 0

    def test_wal_tombstones_reregister_with_listener(self, tmp_path):
        from repro.core.persistence import PersistenceTracker

        config = durable_config()
        tree = LSMTree.open(config, tmp_path)
        tree.put(1, "x")
        tree.delete(1)
        del tree  # crash with the tombstone only in the WAL
        tracker = PersistenceTracker(threshold=10_000)
        recovered = LSMTree.open(config, tmp_path, listener=tracker)
        assert tracker.registered_count == 1
        assert tracker.pending_count == 1
        recovered.close()


class TestStoreHygiene:
    def test_no_orphan_sstables_after_compactions(self, tmp_path):
        config = durable_config()
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(1500):
                tree.put(k % 400, k)
        store = FileStore(tmp_path)
        manifest = store.read_manifest()
        live = {fid for runs in manifest["levels"] for run in runs for fid in run}
        on_disk = set(store.list_sstable_ids())
        assert on_disk == live

    def test_manifest_tracks_next_file_id(self, tmp_path):
        config = durable_config()
        tree = LSMTree.open(config, tmp_path)
        for k in range(300):
            tree.put(k, k)
        tree.close()  # close flushes the buffer, allocating further ids
        next_id = tree.file_ids.peek()
        manifest = FileStore(tmp_path).read_manifest()
        assert manifest["next_file_id"] == next_id
        reopened = LSMTree.open(config, tmp_path)
        # New files must not collide with recovered ones.
        assert reopened.file_ids.peek() >= next_id

    def test_two_directories_are_independent(self, tmp_path):
        config = durable_config()
        with LSMTree.open(config, tmp_path / "a") as a:
            a.put(1, "a-data")
        with LSMTree.open(config, tmp_path / "b") as b:
            b.put(1, "b-data")
        assert LSMTree.open(config, tmp_path / "a").get(1) == "a-data"
        assert LSMTree.open(config, tmp_path / "b").get(1) == "b-data"

    def test_secondary_delete_persists_across_restart(self, tmp_path):
        from repro.core.kiwi import kiwi_range_delete

        params = dict(TINY)
        config = acheron_config(
            delete_persistence_threshold=50_000, pages_per_tile=4, **params
        )
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(400):
                tree.put(k, f"v{k}")
            cutoff = tree.clock.now() // 2
            kiwi_range_delete(tree, 0, cutoff)
            survivors = dict(tree.scan(0, 10_000))
        reopened = LSMTree.open(config, tmp_path)
        assert dict(reopened.scan(0, 10_000)) == survivors


class TestReadOnlyOpen:
    def _built(self, tmp_path):
        config = durable_config()
        tree = LSMTree.open(config, tmp_path)
        for k in range(300):
            tree.put(k, f"v{k}")
        for k in range(200, 230):  # leave entries in the WAL
            tree.put(k, "buffered")
        tree._wal.close()  # crash
        return config

    def test_reads_work_mutations_raise(self, tmp_path):
        from repro.errors import EngineClosedError

        config = self._built(tmp_path)
        tree = LSMTree.open(config, tmp_path, read_only=True)
        assert tree.get(5) == "v5"
        assert tree.get(205) == "buffered"  # WAL replayed into memory
        assert list(tree.scan(0, 3))
        with pytest.raises(EngineClosedError):
            tree.put(1, "nope")
        with pytest.raises(EngineClosedError):
            tree.delete(1)
        with pytest.raises(EngineClosedError):
            tree.flush()
        with pytest.raises(EngineClosedError):
            tree.advance_time(10)
        with pytest.raises(EngineClosedError):
            tree.full_compaction()

    def test_read_only_open_leaves_store_untouched(self, tmp_path):
        import hashlib

        config = self._built(tmp_path)

        def fingerprint():
            digest = hashlib.sha256()
            for path in sorted(p for p in tmp_path.iterdir() if p.is_file()):
                digest.update(path.name.encode())
                digest.update(path.read_bytes())
            return digest.hexdigest()

        before = fingerprint()
        tree = LSMTree.open(config, tmp_path, read_only=True)
        tree.get(5)
        list(tree.scan(0, 100))
        tree.close()
        assert fingerprint() == before

    def test_engine_facade_read_only(self, tmp_path):
        from repro.core.engine import AcheronEngine
        from repro.errors import ConfigError, EngineClosedError

        self._built(tmp_path)
        engine = AcheronEngine(config=None, directory=str(tmp_path), read_only=True)
        assert engine.get(5) == "v5"
        with pytest.raises(EngineClosedError):
            engine.put(1, "x")
        engine.close()
        with pytest.raises(ConfigError):
            AcheronEngine(read_only=True)  # no directory: meaningless
