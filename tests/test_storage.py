"""Unit tests for the simulated disk, block cache, and file store."""

import pytest

from repro.config import DiskModel
from repro.errors import CorruptionError, StorageError
from repro.lsm.entry import Entry
from repro.storage.cache import BlockCache
from repro.storage.disk import SimulatedDisk
from repro.storage.filestore import FileStore


class TestSimulatedDisk:
    def test_counts_pages_and_requests(self):
        disk = SimulatedDisk()
        disk.read_pages(3)
        disk.read_pages(2)
        disk.write_pages(5)
        stats = disk.stats
        assert stats.pages_read == 5
        assert stats.read_requests == 2
        assert stats.pages_written == 5
        assert stats.write_requests == 1
        assert stats.total_pages == 10

    def test_zero_page_requests_are_free(self):
        disk = SimulatedDisk()
        assert disk.read_pages(0) == 0.0
        assert disk.write_pages(0) == 0.0
        assert disk.stats.read_requests == 0
        assert disk.stats.modeled_us == 0.0

    def test_negative_counts_rejected(self):
        disk = SimulatedDisk()
        with pytest.raises(ValueError):
            disk.read_pages(-1)
        with pytest.raises(ValueError):
            disk.write_pages(-1)

    def test_latency_model_pricing(self):
        disk = SimulatedDisk(DiskModel(read_page_us=100, write_page_us=20, request_overhead_us=5))
        assert disk.read_pages(2) == pytest.approx(205.0)
        assert disk.write_pages(3) == pytest.approx(65.0)
        assert disk.stats.modeled_us == pytest.approx(270.0)

    def test_category_attribution(self):
        disk = SimulatedDisk()
        disk.read_pages(2, "query")
        disk.read_pages(3, "compaction")
        disk.read_pages(1, "query")
        disk.write_pages(4, "flush")
        assert disk.stats.reads_by_category == {"query": 3, "compaction": 3}
        assert disk.stats.writes_by_category == {"flush": 4}

    def test_snapshot_is_isolated_from_future_activity(self):
        disk = SimulatedDisk()
        disk.read_pages(1)
        snap = disk.snapshot()
        disk.read_pages(10)
        assert snap.pages_read == 1

    def test_delta_since(self):
        disk = SimulatedDisk()
        disk.read_pages(2, "query")
        snap = disk.snapshot()
        disk.read_pages(3, "query")
        disk.write_pages(1, "flush")
        delta = disk.delta_since(snap)
        assert delta.pages_read == 3
        assert delta.pages_written == 1
        assert delta.reads_by_category == {"query": 3}

    def test_reset(self):
        disk = SimulatedDisk()
        disk.read_pages(5)
        disk.reset()
        assert disk.stats.pages_read == 0
        assert disk.stats.modeled_us == 0.0


class TestBlockCache:
    def test_miss_then_hit(self):
        cache = BlockCache(4)
        assert cache.get("f1", 0) is None
        cache.put("f1", 0, "page")
        assert cache.get("f1", 0) == "page"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = BlockCache(2)
        cache.put("f", 0, "a")
        cache.put("f", 1, "b")
        cache.get("f", 0)  # touch a: now b is LRU
        cache.put("f", 2, "c")
        assert cache.get("f", 1) is None  # evicted
        assert cache.get("f", 0) == "a"
        assert cache.get("f", 2) == "c"

    def test_put_existing_updates_value_and_recency(self):
        cache = BlockCache(2)
        cache.put("f", 0, "a")
        cache.put("f", 1, "b")
        cache.put("f", 0, "a2")  # refresh
        cache.put("f", 2, "c")  # evicts 1, not 0
        assert cache.get("f", 0) == "a2"
        assert cache.get("f", 1) is None

    def test_capacity_zero_disables_cache(self):
        cache = BlockCache(0)
        cache.put("f", 0, "a")
        assert cache.get("f", 0) is None
        assert len(cache) == 0
        assert cache.misses == 1  # the get() still counts as a miss

    def test_invalidate_file_drops_only_that_file(self):
        cache = BlockCache(8)
        cache.put("f1", 0, "a")
        cache.put("f1", 1, "b")
        cache.put("f2", 0, "c")
        assert cache.invalidate_file("f1") == 2
        assert cache.get("f1", 0) is None
        assert cache.get("f2", 0) == "c"

    def test_hit_rate(self):
        cache = BlockCache(4)
        cache.put("f", 0, "a")
        cache.get("f", 0)
        cache.get("f", 1)
        assert cache.hit_rate == pytest.approx(0.5)
        cache.reset_stats()
        assert cache.hit_rate == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BlockCache(-1)

    def test_contains(self):
        cache = BlockCache(2)
        cache.put("f", 0, "a")
        assert ("f", 0) in cache
        assert ("f", 1) not in cache

    def test_small_cache_keeps_single_shard(self):
        # Exact global LRU order below the shard threshold (T2 relies on it).
        assert BlockCache(4).shard_count == 1
        assert BlockCache(511).shard_count == 1

    def test_large_cache_shards_capacity(self):
        cache = BlockCache(1024)
        assert cache.shard_count == 8
        assert sum(s.capacity for s in cache._shards) == 1024

    def test_shard_override_rounds_to_power_of_two(self):
        assert BlockCache(100, shards=3).shard_count == 4
        assert BlockCache(100, shards=1).shard_count == 1

    def test_sharded_capacity_is_respected(self):
        cache = BlockCache(1024, shards=8)
        for i in range(5000):
            cache.put("f", i, i)
        assert len(cache) <= 1024

    def test_admission_rejects_cold_newcomer(self):
        cache = BlockCache(2)
        # The frequency filter only observes *misses*, so make the future
        # residents hot before admitting them.
        for _ in range(3):
            cache.get("f", 0)
            cache.get("f", 1)
        cache.put("f", 0, "a")
        cache.put("f", 1, "b")
        # A one-touch newcomer (never missed) cannot displace them...
        assert not cache.put("f", 2, "cold")
        assert cache.rejected_admissions == 1
        assert ("f", 0) in cache and ("f", 1) in cache
        # ...until it has demonstrably missed more often than the victim.
        for _ in range(4):
            cache.get("f", 2)
        assert cache.put("f", 2, "earned")
        assert ("f", 2) in cache
        assert len(cache) == 2

    def test_pinned_pages_survive_eviction_pressure(self):
        cache = BlockCache(4, shards=1)
        cache.put("f", 0, "pinned", pinned=True)
        for i in range(1, 20):
            cache.put("f", i, f"p{i}")
        assert cache.get("f", 0) == "pinned"
        assert cache.pinned_count == 1

    def test_pinned_evicted_only_as_last_resort(self):
        cache = BlockCache(2, shards=1)
        cache.put("f", 0, "a", pinned=True)
        cache.put("f", 1, "b", pinned=True)
        # Give the newcomer a higher observed frequency than the victims.
        for _ in range(3):
            cache.get("f", 2)
        assert cache.put("f", 2, "c")  # all-pinned shard: LRU pinned goes
        assert ("f", 0) not in cache
        assert ("f", 1) in cache

    def test_put_existing_can_upgrade_to_pinned(self):
        cache = BlockCache(4)
        cache.put("f", 0, "a")
        cache.put("f", 0, "a", pinned=True)
        assert cache.pinned_count == 1

    def test_bytes_tracked_with_custom_sizer(self):
        cache = BlockCache(4, sizer=lambda page: len(page) * 10)
        cache.put("f", 0, "abc")
        cache.put("f", 1, "z")
        assert cache.bytes_cached == 40
        cache.put("f", 0, "ab")  # refresh shrinks the estimate
        assert cache.bytes_cached == 30
        cache.invalidate_file("f")
        assert cache.bytes_cached == 0

    def test_invalidate_counts_and_drops_frequency(self):
        cache = BlockCache(4, shards=1)
        cache.get("f", 0)  # records a miss frequency
        cache.put("f", 0, "a")
        assert cache.invalidate_file("f") == 1
        assert cache.invalidations == 1
        assert cache._shards[0].freq == {}

    def test_clear_drops_pages_but_preserves_stats(self):
        cache = BlockCache(4)
        cache.put("f", 0, "a")
        cache.get("f", 0)
        cache.get("f", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        assert cache.misses == 1

    def test_iter_yields_all_keys(self):
        cache = BlockCache(1024)
        keys = {("f", i) for i in range(40)}
        for _, i in keys:
            cache.put("f", i, i)
        assert set(cache) == keys

    def test_stats_snapshot_shape(self):
        cache = BlockCache(8)
        cache.put("f", 0, "a", pinned=True)
        cache.get("f", 0)
        cache.get("f", 1)
        stats = cache.stats()
        assert stats["capacity_pages"] == 8
        assert stats["shards"] == 1
        assert stats["cached_pages"] == 1
        assert stats["pinned_pages"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert {"bytes", "evictions", "rejected_admissions", "invalidations"} <= set(
            stats
        )


def tile(*page_keys):
    """Build a tile as nested entry lists from per-page key tuples."""
    return [
        [Entry.put(k, f"v{k}", seqno=k + 1, write_time=k) for k in keys]
        for keys in page_keys
    ]


class TestFileStore:
    def test_sstable_roundtrip(self, tmp_path):
        store = FileStore(tmp_path)
        tiles = [tile((1, 2), (3, 4)), tile((10, 11))]
        store.write_sstable(7, tiles, {"created_at": 99})
        loaded, meta = store.read_sstable(7)
        assert loaded == tiles
        assert meta == {"created_at": 99}

    def test_missing_sstable_raises(self, tmp_path):
        with pytest.raises(StorageError):
            FileStore(tmp_path).read_sstable(1)

    def test_corrupt_page_detected(self, tmp_path):
        store = FileStore(tmp_path)
        store.write_sstable(1, [tile((1, 2))], {})
        path = store.sstable_path(1)
        data = bytearray(path.read_bytes())
        data[-2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptionError):
            store.read_sstable(1)

    def test_delete_is_idempotent(self, tmp_path):
        store = FileStore(tmp_path)
        store.write_sstable(1, [tile((1,))], {})
        store.delete_sstable(1)
        store.delete_sstable(1)
        assert store.list_sstable_ids() == []

    def test_list_sstable_ids_sorted(self, tmp_path):
        store = FileStore(tmp_path)
        for fid in (5, 1, 3):
            store.write_sstable(fid, [tile((fid,))], {})
        assert store.list_sstable_ids() == [1, 3, 5]

    def test_manifest_roundtrip_and_missing(self, tmp_path):
        store = FileStore(tmp_path)
        assert store.read_manifest() is None
        manifest = {"levels": [[[1, 2]]], "seqno": 9}
        store.write_manifest(manifest)
        assert store.read_manifest() == manifest

    def test_manifest_overwrite_is_atomic_swap(self, tmp_path):
        store = FileStore(tmp_path)
        store.write_manifest({"v": 1})
        store.write_manifest({"v": 2})
        assert store.read_manifest() == {"v": 2}
        assert not store.manifest_path.with_suffix(".tmp").exists()

    def test_corrupt_manifest_raises(self, tmp_path):
        store = FileStore(tmp_path)
        store.manifest_path.write_text("{not json")
        with pytest.raises(CorruptionError):
            store.read_manifest()

    def test_garbage_collect_removes_unreferenced(self, tmp_path):
        store = FileStore(tmp_path)
        for fid in (1, 2, 3):
            store.write_sstable(fid, [tile((fid,))], {})
        removed = store.garbage_collect(live_file_ids={2})
        assert removed == [1, 3]
        assert store.list_sstable_ids() == [2]
