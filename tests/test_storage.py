"""Unit tests for the simulated disk, block cache, and file store."""

import pytest

from repro.config import DiskModel
from repro.errors import CorruptionError, StorageError
from repro.lsm.entry import Entry
from repro.storage.cache import BlockCache
from repro.storage.disk import SimulatedDisk
from repro.storage.filestore import FileStore


class TestSimulatedDisk:
    def test_counts_pages_and_requests(self):
        disk = SimulatedDisk()
        disk.read_pages(3)
        disk.read_pages(2)
        disk.write_pages(5)
        stats = disk.stats
        assert stats.pages_read == 5
        assert stats.read_requests == 2
        assert stats.pages_written == 5
        assert stats.write_requests == 1
        assert stats.total_pages == 10

    def test_zero_page_requests_are_free(self):
        disk = SimulatedDisk()
        assert disk.read_pages(0) == 0.0
        assert disk.write_pages(0) == 0.0
        assert disk.stats.read_requests == 0
        assert disk.stats.modeled_us == 0.0

    def test_negative_counts_rejected(self):
        disk = SimulatedDisk()
        with pytest.raises(ValueError):
            disk.read_pages(-1)
        with pytest.raises(ValueError):
            disk.write_pages(-1)

    def test_latency_model_pricing(self):
        disk = SimulatedDisk(DiskModel(read_page_us=100, write_page_us=20, request_overhead_us=5))
        assert disk.read_pages(2) == pytest.approx(205.0)
        assert disk.write_pages(3) == pytest.approx(65.0)
        assert disk.stats.modeled_us == pytest.approx(270.0)

    def test_category_attribution(self):
        disk = SimulatedDisk()
        disk.read_pages(2, "query")
        disk.read_pages(3, "compaction")
        disk.read_pages(1, "query")
        disk.write_pages(4, "flush")
        assert disk.stats.reads_by_category == {"query": 3, "compaction": 3}
        assert disk.stats.writes_by_category == {"flush": 4}

    def test_snapshot_is_isolated_from_future_activity(self):
        disk = SimulatedDisk()
        disk.read_pages(1)
        snap = disk.snapshot()
        disk.read_pages(10)
        assert snap.pages_read == 1

    def test_delta_since(self):
        disk = SimulatedDisk()
        disk.read_pages(2, "query")
        snap = disk.snapshot()
        disk.read_pages(3, "query")
        disk.write_pages(1, "flush")
        delta = disk.delta_since(snap)
        assert delta.pages_read == 3
        assert delta.pages_written == 1
        assert delta.reads_by_category == {"query": 3}

    def test_reset(self):
        disk = SimulatedDisk()
        disk.read_pages(5)
        disk.reset()
        assert disk.stats.pages_read == 0
        assert disk.stats.modeled_us == 0.0


class TestBlockCache:
    def test_miss_then_hit(self):
        cache = BlockCache(4)
        assert cache.get("f1", 0) is None
        cache.put("f1", 0, "page")
        assert cache.get("f1", 0) == "page"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = BlockCache(2)
        cache.put("f", 0, "a")
        cache.put("f", 1, "b")
        cache.get("f", 0)  # touch a: now b is LRU
        cache.put("f", 2, "c")
        assert cache.get("f", 1) is None  # evicted
        assert cache.get("f", 0) == "a"
        assert cache.get("f", 2) == "c"

    def test_put_existing_updates_value_and_recency(self):
        cache = BlockCache(2)
        cache.put("f", 0, "a")
        cache.put("f", 1, "b")
        cache.put("f", 0, "a2")  # refresh
        cache.put("f", 2, "c")  # evicts 1, not 0
        assert cache.get("f", 0) == "a2"
        assert cache.get("f", 1) is None

    def test_capacity_zero_disables_cache(self):
        cache = BlockCache(0)
        cache.put("f", 0, "a")
        assert cache.get("f", 0) is None
        assert len(cache) == 0
        assert cache.misses == 1  # the get() still counts as a miss

    def test_invalidate_file_drops_only_that_file(self):
        cache = BlockCache(8)
        cache.put("f1", 0, "a")
        cache.put("f1", 1, "b")
        cache.put("f2", 0, "c")
        assert cache.invalidate_file("f1") == 2
        assert cache.get("f1", 0) is None
        assert cache.get("f2", 0) == "c"

    def test_hit_rate(self):
        cache = BlockCache(4)
        cache.put("f", 0, "a")
        cache.get("f", 0)
        cache.get("f", 1)
        assert cache.hit_rate == pytest.approx(0.5)
        cache.reset_stats()
        assert cache.hit_rate == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BlockCache(-1)

    def test_contains(self):
        cache = BlockCache(2)
        cache.put("f", 0, "a")
        assert ("f", 0) in cache
        assert ("f", 1) not in cache


def tile(*page_keys):
    """Build a tile as nested entry lists from per-page key tuples."""
    return [
        [Entry.put(k, f"v{k}", seqno=k + 1, write_time=k) for k in keys]
        for keys in page_keys
    ]


class TestFileStore:
    def test_sstable_roundtrip(self, tmp_path):
        store = FileStore(tmp_path)
        tiles = [tile((1, 2), (3, 4)), tile((10, 11))]
        store.write_sstable(7, tiles, {"created_at": 99})
        loaded, meta = store.read_sstable(7)
        assert loaded == tiles
        assert meta == {"created_at": 99}

    def test_missing_sstable_raises(self, tmp_path):
        with pytest.raises(StorageError):
            FileStore(tmp_path).read_sstable(1)

    def test_corrupt_page_detected(self, tmp_path):
        store = FileStore(tmp_path)
        store.write_sstable(1, [tile((1, 2))], {})
        path = store.sstable_path(1)
        data = bytearray(path.read_bytes())
        data[-2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptionError):
            store.read_sstable(1)

    def test_delete_is_idempotent(self, tmp_path):
        store = FileStore(tmp_path)
        store.write_sstable(1, [tile((1,))], {})
        store.delete_sstable(1)
        store.delete_sstable(1)
        assert store.list_sstable_ids() == []

    def test_list_sstable_ids_sorted(self, tmp_path):
        store = FileStore(tmp_path)
        for fid in (5, 1, 3):
            store.write_sstable(fid, [tile((fid,))], {})
        assert store.list_sstable_ids() == [1, 3, 5]

    def test_manifest_roundtrip_and_missing(self, tmp_path):
        store = FileStore(tmp_path)
        assert store.read_manifest() is None
        manifest = {"levels": [[[1, 2]]], "seqno": 9}
        store.write_manifest(manifest)
        assert store.read_manifest() == manifest

    def test_manifest_overwrite_is_atomic_swap(self, tmp_path):
        store = FileStore(tmp_path)
        store.write_manifest({"v": 1})
        store.write_manifest({"v": 2})
        assert store.read_manifest() == {"v": 2}
        assert not store.manifest_path.with_suffix(".tmp").exists()

    def test_corrupt_manifest_raises(self, tmp_path):
        store = FileStore(tmp_path)
        store.manifest_path.write_text("{not json")
        with pytest.raises(CorruptionError):
            store.read_manifest()

    def test_garbage_collect_removes_unreferenced(self, tmp_path):
        store = FileStore(tmp_path)
        for fid in (1, 2, 3):
            store.write_sstable(fid, [tile((fid,))], {})
        removed = store.garbage_collect(live_file_ids={2})
        assert removed == [1, 3]
        assert store.list_sstable_ids() == [2]
