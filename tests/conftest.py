"""Shared fixtures: small engine scales that exercise multi-level trees
quickly, and helpers for building populated engines."""

from __future__ import annotations

import pytest

from repro.config import LSMConfig, acheron_config, baseline_config
from repro.core.engine import AcheronEngine

#: A deliberately tiny scale: trees develop 3+ levels within a few
#: thousand operations, so compaction logic is exercised by every test.
TINY = {
    "memtable_entries": 64,
    "entries_per_page": 8,
    "size_ratio": 3,
}


@pytest.fixture
def serial_write_path(monkeypatch):
    """Pin engines created in the test to the serial inline write path.

    For tests that assert *schedules* rather than contents — exact
    per-operation I/O attribution, flush counts, or level shapes at an
    observation point.  The background write path (a ``REPRO_WORKERS``
    value leaking in from the environment, e.g. the concurrent CI job)
    legitimately changes those: flushes land later and batched, halving
    write amplification.  Request via
    ``@pytest.mark.usefixtures("serial_write_path")``.
    """
    monkeypatch.setenv("REPRO_WORKERS", "1")


@pytest.fixture
def tiny_config() -> LSMConfig:
    return baseline_config(**TINY)


@pytest.fixture
def baseline_engine() -> AcheronEngine:
    engine = AcheronEngine.baseline(**TINY)
    yield engine
    engine.close()


@pytest.fixture
def acheron_engine() -> AcheronEngine:
    engine = AcheronEngine.acheron(
        delete_persistence_threshold=1_000, pages_per_tile=4, **TINY
    )
    yield engine
    engine.close()


def fill_sequential(engine: AcheronEngine, count: int, start: int = 0) -> None:
    """Insert ``count`` keys ``start..start+count-1`` with value v<k>."""
    for k in range(start, start + count):
        engine.put(k, f"v{k}")


def make_acheron(**overrides) -> AcheronEngine:
    params = dict(TINY)
    params.setdefault("pages_per_tile", 4)
    d_th = overrides.pop("delete_persistence_threshold", 1_000)
    params.update(overrides)
    return AcheronEngine(
        acheron_config(delete_persistence_threshold=d_th, **params)
    )


def make_baseline(**overrides) -> AcheronEngine:
    params = dict(TINY)
    params.update(overrides)
    return AcheronEngine(baseline_config(**params))
