"""A pytest-sized slice of the crash matrix, plus harness self-checks.

The full matrix (every fault point x every operation x every kind) lives
behind ``scripts/crash_matrix.py``; here we run one quick operation per
test so a plain ``pytest`` run still exercises crash-recovery end to end,
and we pin the combinatorics so registry growth cannot silently shrink
coverage.
"""

from __future__ import annotations

import pytest

from repro.storage import faults as fp
from repro.testing.crashmatrix import (
    BITFLIP_POINTS,
    OPERATIONS,
    iter_combos,
    run_crash_matrix,
)


class TestComboEnumeration:
    def test_every_fault_point_appears(self):
        combos = list(iter_combos(quick=False))
        points = {point for _, point, _ in combos}
        assert points == set(fp.FAULT_POINTS)

    def test_every_operation_appears(self):
        combos = list(iter_combos(quick=False))
        ops = {op for op, _, _ in combos}
        assert ops == set(OPERATIONS)

    def test_bitflips_restricted_to_data_writes(self):
        combos = list(iter_combos(quick=False))
        flip_points = {p for _, p, k in combos if k == fp.BITFLIP}
        assert flip_points == set(BITFLIP_POINTS)

    def test_quick_mode_drops_only_the_slow_twins(self):
        full = set(iter_combos(quick=False))
        quick = set(iter_combos(quick=True))
        assert quick < full
        dropped_kinds = {k for _, _, k in full - quick}
        assert dropped_kinds == {fp.ENOSPC, fp.FSYNC_DROP}


@pytest.mark.parametrize("operation", OPERATIONS)
def test_quick_matrix_operation(operation, tmp_path):
    matrix = run_crash_matrix(seed=3, quick=True, operations=(operation,))
    assert matrix.passed, matrix.summary()
    # The matrix is only meaningful if faults actually fire.
    assert matrix.triggered_count() > 0


def test_matrix_is_deterministic_per_seed(tmp_path):
    first = run_crash_matrix(seed=11, quick=True, operations=("flush",))
    second = run_crash_matrix(seed=11, quick=True, operations=("flush",))
    assert [r.label() for r in first.results] == [r.label() for r in second.results]
    assert [r.triggered for r in first.results] == [r.triggered for r in second.results]
