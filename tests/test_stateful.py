"""Hypothesis stateful machine: the engine vs a dict, adversarially.

A ``RuleBasedStateMachine`` lets hypothesis *interleave* operations —
puts, deletes, reads, scans, flushes, idle time, secondary range deletes,
and (for the durable variant) crash-restarts — searching for an ordering
that desynchronizes the engine from its model.  This subsumes the
fixed-pattern integration tests: any counterexample shrinks to a minimal
operation sequence.
"""

import shutil

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.config import CompactionStyle, acheron_config
from repro.lsm.tree import LSMTree

KEYS = st.integers(0, 60)
VALUES = st.integers(0, 10_000)

MACHINE_SETTINGS = settings(
    max_examples=25,
    stateful_step_count=40,
    deadline=None,
)


def small_config(policy=CompactionStyle.LEVELING):
    return acheron_config(
        delete_persistence_threshold=150,
        pages_per_tile=2,
        kiwi_page_filters=True,
        memtable_entries=8,
        entries_per_page=4,
        size_ratio=3,
        policy=policy,
    )


class EngineMachine(RuleBasedStateMachine):
    """In-memory engine vs dict model."""

    def __init__(self):
        super().__init__()
        self.tree = LSMTree(small_config())
        self.model: dict[int, int] = {}
        self.dkeys: dict[int, int] = {}  # key -> delete_key of live version

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.tree.put(key, value)
        self.model[key] = value
        self.dkeys[key] = self.tree.clock.now() - 1

    @rule(key=KEYS)
    def delete(self, key):
        self.tree.delete(key)
        self.model.pop(key, None)
        self.dkeys.pop(key, None)

    @rule(key=KEYS)
    def get(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @rule(lo=KEYS, span=st.integers(0, 20))
    def scan(self, lo, span):
        hi = lo + span
        expected = sorted((k, v) for k, v in self.model.items() if lo <= k <= hi)
        assert list(self.tree.scan(lo, hi)) == expected
        assert list(self.tree.scan(lo, hi, reverse=True)) == expected[::-1]

    @rule()
    def flush(self):
        self.tree.flush()

    @rule(ticks=st.integers(1, 200))
    def idle(self, ticks):
        self.tree.advance_time(ticks)

    @rule(window=st.integers(0, 500))
    def secondary_delete(self, window):
        now = self.tree.clock.now()
        lo, hi = 0, max(0, now - window)
        if lo > hi:
            return
        from repro.core.kiwi import kiwi_range_delete

        kiwi_range_delete(self.tree, lo, hi)
        for key, dkey in list(self.dkeys.items()):
            if lo <= dkey <= hi:
                del self.model[key]
                del self.dkeys[key]

    # ------------------------------------------------------------------
    # invariants (checked after every rule)
    # ------------------------------------------------------------------
    @invariant()
    def full_view_matches(self):
        assert dict(self.tree.scan(-1, 10**9)) == self.model

    @invariant()
    def capacity_respected(self):
        for level in self.tree.iter_levels():
            if not level.is_empty:
                assert level.entry_count <= self.tree.config.level_capacity_entries(
                    level.index
                ) or level.run_count > 1  # transiently legal mid-install


class DurableEngineMachine(RuleBasedStateMachine):
    """Durable engine with crash-restarts vs dict model."""

    @initialize()
    def setup(self):
        import tempfile

        self.directory = tempfile.mkdtemp(prefix="acheron-stateful-")
        self.config = small_config(policy=CompactionStyle.LAZY_LEVELING)
        self.tree = LSMTree.open(self.config, self.directory)
        self.model: dict[int, int] = {}

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.tree.put(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        self.tree.delete(key)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def get(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @precondition(lambda self: True)
    @rule()
    def crash_and_recover(self):
        # Abandon the handle without close(): everything acknowledged must
        # survive through the manifest + WAL.
        self.tree._wal.close()  # noqa: SLF001 - simulating the crash
        self.tree = LSMTree.open(self.config, self.directory)

    @invariant()
    def full_view_matches(self):
        assert dict(self.tree.scan(-1, 10**9)) == self.model

    def teardown(self):
        shutil.rmtree(self.directory, ignore_errors=True)


TestEngineMachine = EngineMachine.TestCase
TestEngineMachine.settings = MACHINE_SETTINGS

TestDurableEngineMachine = DurableEngineMachine.TestCase
TestDurableEngineMachine.settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)
