"""System-level property tests (hypothesis): the invariants the paper's
design rests on, checked against randomly generated operation sequences."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CompactionStyle

from conftest import make_acheron, make_baseline

# One operation: (op_code, key, payload)
#   0 = put, 1 = delete, 2 = get-check, 3 = scan-check
op_strategy = st.tuples(
    st.integers(0, 3), st.integers(0, 120), st.integers(0, 10_000)
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def apply_and_check(engine, ops):
    model = {}
    for code, key, payload in ops:
        if code == 0:
            engine.put(key, payload)
            model[key] = payload
        elif code == 1:
            engine.delete(key)
            model.pop(key, None)
        elif code == 2:
            assert engine.get(key) == model.get(key)
        else:
            lo, hi = key, key + (payload % 40)
            expected = sorted((k, v) for k, v in model.items() if lo <= k <= hi)
            assert list(engine.scan(lo, hi)) == expected
            assert list(engine.scan(lo, hi, reverse=True)) == expected[::-1]
    assert dict(engine.scan(-(10**9), 10**9)) == model
    engine.tree.check_invariants()
    return model


class TestEngineIsADict:
    @given(st.lists(op_strategy, max_size=300))
    @SETTINGS
    def test_baseline_leveling(self, ops):
        apply_and_check(make_baseline(), ops)

    @given(st.lists(op_strategy, max_size=300))
    @SETTINGS
    def test_baseline_tiering(self, ops):
        apply_and_check(make_baseline(policy=CompactionStyle.TIERING), ops)

    @given(st.lists(op_strategy, max_size=300))
    @SETTINGS
    def test_acheron_kiwi_leveling(self, ops):
        apply_and_check(
            make_acheron(delete_persistence_threshold=150, pages_per_tile=3), ops
        )

    @given(st.lists(op_strategy, max_size=300))
    @SETTINGS
    def test_baseline_lazy_leveling(self, ops):
        apply_and_check(
            make_baseline(policy=CompactionStyle.LAZY_LEVELING), ops
        )

    @given(st.lists(op_strategy, max_size=300))
    @SETTINGS
    def test_acheron_tiering(self, ops):
        apply_and_check(
            make_acheron(
                delete_persistence_threshold=150,
                pages_per_tile=2,
                policy=CompactionStyle.TIERING,
            ),
            ops,
        )


class TestPersistenceGuaranteeProperty:
    @given(
        st.lists(st.tuples(st.integers(0, 1), st.integers(0, 150)), max_size=400),
        st.sampled_from([120, 400, 900]),
        st.sampled_from(
            [
                CompactionStyle.LEVELING,
                CompactionStyle.TIERING,
                CompactionStyle.LAZY_LEVELING,
            ]
        ),
    )
    @SETTINGS
    def test_no_delete_outlives_d_th(self, ops, d_th, policy):
        engine = make_acheron(delete_persistence_threshold=d_th, policy=policy)
        for is_delete, key in ops:
            if is_delete:
                engine.delete(key)
            else:
                engine.put(key, key)
        engine.advance_time(d_th + 1)
        stats = engine.persistence_stats()
        assert stats.violations == 0, stats
        assert stats.compliant(), stats
        assert stats.pending == 0, stats  # after the drain everything ended


class TestSecondaryDeleteProperty:
    @given(
        st.lists(st.integers(0, 200), min_size=1, max_size=250),
        st.integers(0, 250),
        st.integers(0, 250),
    )
    @SETTINGS
    def test_kiwi_and_full_rewrite_agree(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        woven = make_acheron(delete_persistence_threshold=10**6, pages_per_tile=3)
        classic = make_baseline()
        model = {}
        for key in keys:
            woven.put(key, f"v{key}")
            classic.put(key, f"v{key}")
            model[key] = (f"v{key}", woven.clock.now() - 1)
        woven.delete_range(lo, hi, method="kiwi")
        classic.delete_range(lo, hi, method="full_rewrite")
        expected = {
            k: v for k, (v, dkey) in model.items() if not (lo <= dkey <= hi)
        }
        assert dict(woven.scan(-1, 10**9)) == expected
        assert dict(classic.scan(-1, 10**9)) == expected
        woven.tree.check_invariants()
        classic.tree.check_invariants()


class TestLazyFenceProperty:
    """The lazy fence executor is a drop-in for eager secondary deletes:
    identical logical contents before *and* after resolution, across
    compaction policies, worker counts, and shard counts -- and the fence
    record itself survives both WAL replay and manifest reopen."""

    @given(
        st.lists(st.integers(0, 200), min_size=1, max_size=200),
        st.integers(0, 250),
        st.integers(0, 250),
        st.sampled_from(
            [
                CompactionStyle.LEVELING,
                CompactionStyle.TIERING,
                CompactionStyle.LAZY_LEVELING,
            ]
        ),
    )
    @SETTINGS
    def test_eager_and_lazy_agree(self, keys, a, b, policy):
        lo, hi = min(a, b), max(a, b)
        eager = make_acheron(
            delete_persistence_threshold=10**6, pages_per_tile=3, policy=policy
        )
        lazy = make_acheron(
            delete_persistence_threshold=10**6, pages_per_tile=3, policy=policy
        )
        try:
            for key in keys:
                eager.put(key, f"v{key}")
                lazy.put(key, f"v{key}")
            eager.delete_range(lo, hi, method="eager")
            lazy.delete_range(lo, hi, method="lazy")
            # Unresolved fence vs physical rewrite: same logical contents.
            assert dict(lazy.scan(-1, 10**9)) == dict(eager.scan(-1, 10**9))
            # Writes after the fence (higher seqno) must never be shadowed.
            for key in keys[:10]:
                eager.put(key, f"w{key}")
                lazy.put(key, f"w{key}")
            assert dict(lazy.scan(-1, 10**9)) == dict(eager.scan(-1, 10**9))
            # Resolution (compaction drops shadowed entries, retires the
            # fence) must not change contents either.
            lazy.compact_all()
            assert dict(lazy.scan(-1, 10**9)) == dict(eager.scan(-1, 10**9))
            lazy.tree.check_invariants()
            eager.tree.check_invariants()
        finally:
            eager.close()
            lazy.close()

    @given(
        st.lists(st.integers(0, 200), min_size=1, max_size=120),
        st.integers(0, 250),
        st.integers(0, 250),
        st.sampled_from([1, 4]),
        st.sampled_from([1, 4]),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_eager_and_lazy_agree_workers_shards(self, keys, a, b, workers, shards):
        from repro.config import acheron_config
        from repro.core.engine import AcheronEngine
        from repro.shard import ShardedEngine

        lo, hi = min(a, b), max(a, b)
        config = acheron_config(
            delete_persistence_threshold=10**6,
            pages_per_tile=3,
            memtable_entries=64,
            entries_per_page=8,
            size_ratio=3,
        )

        def build():
            if shards > 1:
                return ShardedEngine(
                    config, shards=shards, key_space=(0, 256), workers=workers
                )
            return AcheronEngine(config, workers=workers)

        eager, lazy = build(), build()
        try:
            for key in keys:
                eager.put(key, f"v{key}")
                lazy.put(key, f"v{key}")
            eager.delete_range(lo, hi, method="eager")
            lazy.delete_range(lo, hi, method="lazy")
            assert dict(lazy.scan(-1, 10**9)) == dict(eager.scan(-1, 10**9))
            lazy.compact_all()
            assert dict(lazy.scan(-1, 10**9)) == dict(eager.scan(-1, 10**9))
        finally:
            eager.close()
            lazy.close()

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 80), st.integers(0, 10_000)),
            max_size=120,
        ),
        windows=st.lists(
            st.tuples(st.integers(0, 200), st.integers(0, 60)),
            min_size=1,
            max_size=3,
        ),
    )
    @settings(max_examples=10, deadline=None)
    def test_fence_records_survive_crash_and_reopen(
        self, tmp_path_factory, ops, windows
    ):
        """A fence is one WAL record: a crash-style abandon must replay it,
        and a clean close must carry it through the manifest."""
        import shutil
        from repro.config import acheron_config
        from repro.lsm.tree import LSMTree

        directory = tmp_path_factory.mktemp("fence-prop")
        try:
            config = acheron_config(
                delete_persistence_threshold=10**6,
                pages_per_tile=2,
                memtable_entries=16,
                entries_per_page=4,
                size_ratio=3,
            )
            tree = LSMTree.open(config, directory)
            for code, key, payload in ops:
                if code == 1:
                    tree.delete(key)
                else:
                    tree.put(key, payload)
            for start, width in windows:
                tree.append_range_fence(start, start + width)
            expected = dict(tree.scan(-1, 10**9))
            recorded = {(f.lo, f.hi, f.seqno) for f in tree.fences}

            # Crash: abandon the handle; reopen replays fences from the WAL.
            tree._wal.close()
            tree = LSMTree.open(config, directory)
            assert dict(tree.scan(-1, 10**9)) == expected
            assert {(f.lo, f.hi, f.seqno) for f in tree.fences} == recorded

            # Clean close: fences ride the manifest (close may flush and
            # retire fully-resolved fences, so survivors are a subset).
            tree.close()
            tree = LSMTree.open(config, directory)
            assert dict(tree.scan(-1, 10**9)) == expected
            assert {(f.lo, f.hi, f.seqno) for f in tree.fences} <= recorded
            tree.check_invariants()
            tree.close()
        finally:
            shutil.rmtree(directory, ignore_errors=True)


class TestDurabilityProperty:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 80), st.integers(0, 10_000)),
            max_size=150,
        ),
        restart_points=st.lists(st.integers(1, 149), max_size=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_restarts_never_lose_acknowledged_writes(
        self, tmp_path_factory, ops, restart_points
    ):
        """Close-less restarts (crash simulation) at arbitrary points must
        preserve every acknowledged put/delete exactly."""
        import shutil
        from repro.config import acheron_config
        from repro.lsm.tree import LSMTree

        directory = tmp_path_factory.mktemp("durable-prop")
        try:
            config = acheron_config(
                delete_persistence_threshold=200,
                pages_per_tile=2,
                memtable_entries=16,
                entries_per_page=4,
                size_ratio=3,
            )
            restarts = set(restart_points)
            tree = LSMTree.open(config, directory)
            model = {}
            for i, (code, key, payload) in enumerate(ops):
                if i in restarts:
                    # Crash: abandon the handle without close() or flush().
                    tree._wal.close()
                    tree = LSMTree.open(config, directory)
                    assert dict(tree.scan(-1, 10**9)) == model, f"state lost at op {i}"
                if code == 0 or code == 2:
                    tree.put(key, payload)
                    model[key] = payload
                elif code == 1:
                    tree.delete(key)
                    model.pop(key, None)
                else:
                    assert tree.get(key) == model.get(key)
            tree._wal.close()
            final = LSMTree.open(config, directory)
            assert dict(final.scan(-1, 10**9)) == model
            final.check_invariants()
            final.close()
        finally:
            shutil.rmtree(directory, ignore_errors=True)


class TestGranularityProperty:
    @given(st.lists(op_strategy, max_size=250))
    @SETTINGS
    def test_level_granularity_is_a_dict_too(self, ops):
        from repro.config import CompactionGranularity

        apply_and_check(
            make_baseline(granularity=CompactionGranularity.LEVEL), ops
        )
