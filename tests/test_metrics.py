"""Tests for amplification metrics, tree shape, and table rendering."""

import pytest

from repro.metrics.amplification import (
    bytes_on_disk,
    live_bytes_on_disk,
    measure_amplification,
    read_cost_breakdown,
    space_amplification,
    write_amplification,
)
from repro.metrics.reporting import format_table
from repro.metrics.shape import tree_shape

from conftest import make_baseline


@pytest.mark.usefixtures("serial_write_path")  # asserts schedule-exact counters
class TestAmplification:
    def test_write_amp_zero_before_ingest(self):
        assert write_amplification(make_baseline().tree) == 0.0

    def test_write_amp_at_least_one_after_flushes(self):
        engine = make_baseline()
        for k in range(1000):
            engine.put(k, k)
        # Everything ingested was written at least once (flush), plus
        # compaction rewrites: WA > 1.
        assert write_amplification(engine.tree) > 1.0

    def test_space_amp_one_for_pristine_data(self):
        engine = make_baseline()
        for k in range(500):
            engine.put(k, k)
        engine.compact_all()
        assert space_amplification(engine.tree) == pytest.approx(1.0)

    def test_space_amp_grows_with_dead_versions(self):
        engine = make_baseline()
        for k in range(600):
            engine.put(k, k)
        baseline_amp = space_amplification(engine.tree)
        for k in range(0, 600, 2):
            engine.delete(k)
        engine.flush()
        assert space_amplification(engine.tree) > baseline_amp

    def test_space_amp_of_empty_tree(self):
        assert space_amplification(make_baseline().tree) == 1.0

    def test_bytes_on_disk_prices_tombstones_separately(self):
        engine = make_baseline()
        for k in range(600):
            engine.put(k, k)
        engine.flush()
        before = bytes_on_disk(engine.tree)
        for k in range(0, 600, 3):
            engine.delete(k)
        engine.flush()
        after = bytes_on_disk(engine.tree)
        tombs = engine.tree.tombstone_count_on_disk
        if tombs:  # tombstones are smaller than full entries
            per_tomb = engine.tree.config.entry_bytes(is_tombstone=True)
            per_put = engine.tree.config.entry_bytes(is_tombstone=False)
            assert per_tomb < per_put
            assert after > before - 200 * per_put  # sanity: not wildly off

    def test_live_bytes_excludes_shadowed_versions(self):
        engine = make_baseline()
        for _ in range(3):
            for k in range(200):
                engine.put(k, "x")
        engine.flush()
        live = live_bytes_on_disk(engine.tree)
        per_put = engine.tree.config.entry_bytes(is_tombstone=False)
        assert live == 200 * per_put

    def test_measure_amplification_snapshot(self):
        engine = make_baseline()
        for k in range(500):
            engine.put(k, k)
        engine.get(1)
        engine.get(2)
        report = measure_amplification(engine.tree)
        assert report.lookups == 2
        assert report.pages_read_per_lookup >= 0
        assert report.pages_written_flush > 0
        assert report.entries_on_disk == engine.tree.entry_count_on_disk

    def test_read_cost_breakdown_categories(self):
        engine = make_baseline()
        for k in range(500):
            engine.put(k, k)
        engine.get(123)
        breakdown = read_cost_breakdown(engine.tree)
        assert "compaction" in breakdown
        assert breakdown.get("query", 0) >= 0


@pytest.mark.usefixtures("serial_write_path")  # asserts schedule-exact counters
class TestShape:
    def test_shape_rows_match_levels(self):
        engine = make_baseline()
        for k in range(700):
            engine.put(k, k)
        rows = tree_shape(engine.tree)
        assert rows[0].index == 1
        total = sum(r.entries for r in rows)
        assert total == engine.tree.entry_count_on_disk
        for row in rows:
            assert 0.0 <= row.tombstone_fraction <= 1.0
            assert row.capacity == engine.config.level_capacity_entries(row.index)

    def test_oldest_tombstone_age(self):
        engine = make_baseline()
        for k in range(800):
            engine.put(k, k)
        for k in range(0, 800, 2):
            engine.delete(k)
        engine.flush()
        rows = tree_shape(engine.tree)
        aged = [r for r in rows if r.oldest_tombstone_age is not None]
        assert aged, "some level must hold tombstones in this workload"
        assert all(r.oldest_tombstone_age >= 0 for r in aged)


class TestFormatTable:
    def test_renders_alignment_and_rule(self):
        text = format_table(["name", "count"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("+")
        assert "| name" in lines[1]
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equally wide

    def test_title(self):
        text = format_table(["a"], [[1]], title="T1")
        assert text.splitlines()[0] == "T1"

    def test_formats_numbers(self):
        text = format_table(["x"], [[1234567], [0.001234], [float("inf")], [None]])
        assert "1,234,567" in text
        assert "1.234e-03" in text
        assert "inf" in text
        assert "-" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
