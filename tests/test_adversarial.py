"""Adversarial workloads and the defenses they are aimed at.

Each attack in :mod:`repro.workload.adversarial` has a matching defense,
and each pair gets both sides tested here:

* **bloom defeat vs salting** -- a crafted absent-key stream saturates an
  unsalted filter by construction (FPR 1.0) but probes a *salted* filter
  as if it were random noise, so its FPR stays at the design rate;
* **one-hit flood vs the doorkeeper** -- a stream of never-repeated pages
  washes an unhardened cache's working set out; the hardened cache keeps
  the hot set resident because one-hit wonders earn no admission credit;
* **empty-point flood vs the negative guard** -- pages admitted only to
  answer a bloom false positive are dropped again in hardened mode;
* **write storm vs auto-split** -- the controller fires on a persistently
  hot shard but never on alternating hot spots (hysteresis) and not
  again inside the cooldown;
* **salt persistence** -- the salt is a durable secret: it must survive a
  close/reopen bit-exact, and the doctor must verify it is on disk.

The end-to-end degradation numbers (defended vs undefended engines under
each full attack) live in the perfsuite's ``adversarial`` phase; these
tests pin the mechanisms at unit scale so a regression names the broken
part.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import make_acheron
from repro.errors import WorkloadError
from repro.filters.bloom import BloomFilter, generate_salt
from repro.shard.autosplit import AutoSplitConfig, AutoSplitController
from repro.storage.cache import BlockCache
from repro.workload.adversarial import (
    ADVERSARIES,
    build_adversary,
    craft_bloom_defeating_keys,
    hot_set_keys,
)
from repro.workload.generator import KEY_STRIDE
from repro.workload.spec import OpKind


SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# salted blooms vs crafted key streams
# ---------------------------------------------------------------------------
class TestSaltedBloomFPR:
    @given(seed=st.integers(0, 2**32 - 1), nkeys=st.integers(128, 512))
    @SETTINGS
    def test_crafted_stream_fpr_bounded_under_salt(self, seed, nkeys):
        """Keys crafted to saturate an unsalted filter (FPR 1.0 by
        construction) must probe a salted twin at the design false-positive
        rate (~0.8% at 10 bits/key; we allow 8% for small samples)."""
        rng = random.Random(seed)
        keys = [i * KEY_STRIDE for i in range(nkeys)]
        unsalted = BloomFilter.build(keys, 10.0)
        # An attacker is not confined to the stored key range: any absent
        # key that false-positives the replicated filter will do, so draw
        # from a wide pool until 100 distinct hits are found.
        crafted: set[int] = set()
        for _ in range(200_000):
            if len(crafted) == 100:
                break
            candidate = rng.randrange(1, nkeys * KEY_STRIDE * 1000)
            if candidate % KEY_STRIDE and unsalted.might_contain(candidate):
                crafted.add(candidate)
        assert len(crafted) == 100, "filter too sparse to craft against"
        # By construction every crafted key false-positives unsalted.
        assert all(unsalted.might_contain(k) for k in crafted)
        salted = BloomFilter.build(keys, 10.0, salt=generate_salt())
        fp = sum(1 for k in crafted if salted.might_contain(k))
        assert fp / len(crafted) <= 0.08

    def test_crafter_defeats_chunked_filters(self):
        """The attack generator's per-memtable-chunk simulation crafts
        keys that pass the unsalted per-chunk filters it rebuilt."""
        rng = random.Random(7)
        crafted = craft_bloom_defeating_keys(
            rng, preload=1024, memtable_entries=256, bits_per_key=10.0
        )
        assert crafted, "no keys crafted"
        # Replay the attacker's own simulation: every crafted key must
        # false-positive at least one chunk filter.
        chunks = [range(lo, lo + 256) for lo in range(0, 1024, 256)]
        sims = [
            BloomFilter.build([s * KEY_STRIDE for s in chunk], 10.0)
            for chunk in chunks
        ]
        for key in crafted[:50]:
            assert key % KEY_STRIDE != 0  # absent by construction
            assert any(sim.might_contain(key) for sim in sims)

    def test_salt_never_probes_bloom_pair_path(self):
        """Salted filters must not share hash state with unsalted ones."""
        keys = list(range(0, 512, 4))
        salted = BloomFilter.build(keys, 10.0, salt=b"\x01" * 16)
        resalted = BloomFilter.build(keys, 10.0, salt=b"\x02" * 16)
        # Different salts set different bit patterns for the same keys.
        assert salted.might_contain(keys[0]) and resalted.might_contain(keys[0])
        assert bytes(salted._bits) != bytes(resalted._bits)


# ---------------------------------------------------------------------------
# cache-admission hardening vs floods
# ---------------------------------------------------------------------------
def _establish_hot(cache: BlockCache, hot: int) -> None:
    """Install ``hot`` pages and touch them twice (admission credit)."""
    for i in range(hot):
        cache.get("hot", i)
        cache.put("hot", i, f"page{i}")
    for i in range(hot):
        assert cache.get("hot", i) is not None


def _flood_hit_rate(cache: BlockCache, hot: int, flood: int) -> float:
    """One-hit flood with a periodic hot probe; returns hot hit rate."""
    hits = probes = 0
    for k in range(flood):
        cache.get("flood", k)
        cache.put("flood", k, f"flood{k}")
        if k % 10 == 9:
            probes += 1
            hits += cache.get("hot", k % hot) is not None
    return hits / probes


class TestHardenedAdmission:
    def test_hot_set_survives_one_hit_flood(self):
        hardened = BlockCache(32, hardened=True)
        _establish_hot(hardened, 8)
        assert _flood_hit_rate(hardened, hot=8, flood=2000) >= 0.9
        assert hardened.doorkeeper_rejections > 0

    def test_unhardened_cache_is_washed_out(self):
        """The control: without the doorkeeper the same flood evicts the
        hot set (this is the attack the defense exists for)."""
        plain = BlockCache(32, hardened=False)
        _establish_hot(plain, 8)
        assert _flood_hit_rate(plain, hot=8, flood=2000) <= 0.5
        assert plain.doorkeeper_rejections == 0

    def test_negative_guard_drops_fp_pages(self):
        cache = BlockCache(16, hardened=True)
        cache.put("f", 3, "page")
        assert cache.note_negative("f", 3) is True
        assert cache.get("f", 3) is None  # dropped
        assert cache.negative_guard_drops == 1

    def test_negative_guard_spares_pinned_and_noops_unhardened(self):
        cache = BlockCache(16, hardened=True)
        cache.put("f", 1, "page", pinned=True)
        assert cache.note_negative("f", 1) is False
        assert cache.get("f", 1) is not None
        plain = BlockCache(16, hardened=False)
        plain.put("f", 2, "page")
        assert plain.note_negative("f", 2) is False
        assert plain.get("f", 2) is not None
        assert plain.negative_guard_drops == 0


# ---------------------------------------------------------------------------
# auto-split hysteresis and cooldown
# ---------------------------------------------------------------------------
def _hot_window(ctl: AutoSplitController, shard: int, ops: int) -> int | None:
    """Route one whole window of writes at ``shard``; return the verdict."""
    boundary = False
    for _ in range(ops):
        boundary = ctl.note_writes(shard)
    assert boundary
    return ctl.evaluate()


class TestAutoSplitHysteresis:
    CFG = AutoSplitConfig(
        window_ops=64, min_window_ops=16, hysteresis=3, cooldown_ops=256
    )

    def test_alternating_hot_shards_never_split(self):
        """Ping-ponging hot spots reset the streak on every flip: no
        oscillating split/merge storms, ever."""
        ctl = AutoSplitController(self.CFG)
        for window in range(40):
            assert _hot_window(ctl, window % 2, 64) is None
        assert ctl.events == []

    def test_persistent_hot_shard_splits_after_hysteresis(self):
        ctl = AutoSplitController(self.CFG)
        assert _hot_window(ctl, 1, 64) is None
        assert _hot_window(ctl, 1, 64) is None
        assert _hot_window(ctl, 1, 64) == 1

    def test_cooldown_blocks_refire(self):
        ctl = AutoSplitController(self.CFG)
        for _ in range(2):
            _hot_window(ctl, 0, 64)
        assert _hot_window(ctl, 0, 64) == 0
        ctl.record_split(0, tick=100)
        # Cooldown (256 ops = 4 windows) holds even under a persistent
        # storm; the streak keeps building underneath, so the storm may
        # refire at the first boundary after expiry -- but not before.
        fired = [_hot_window(ctl, 0, 64) for _ in range(3)]
        assert fired == [None, None, None]
        assert _hot_window(ctl, 0, 64) == 0

    def test_refusal_also_cools_down(self):
        ctl = AutoSplitController(self.CFG)
        for _ in range(3):
            _hot_window(ctl, 2, 64)
        ctl.record_refusal(2, tick=50, reason="single-key shard")
        assert ctl.cooldown_remaining == self.CFG.cooldown_ops
        assert [e["event"] for e in ctl.events] == ["refused"]


# ---------------------------------------------------------------------------
# salt durability
# ---------------------------------------------------------------------------
class TestSaltPersistence:
    def test_salt_round_trips_across_reopen(self, tmp_path):
        from repro.core.engine import AcheronEngine

        directory = str(tmp_path / "store")
        engine = AcheronEngine.acheron(
            directory=directory,
            bloom_salted=True,
            memtable_entries=64,
            entries_per_page=8,
        )
        for k in range(200):
            engine.put(k * 4, f"v{k}")
        salt = engine.tree.bloom_salt
        assert salt is not None and len(salt) >= 8
        engine.close()

        reopened = AcheronEngine.acheron(
            directory=directory,
            bloom_salted=True,
            memtable_entries=64,
            entries_per_page=8,
        )
        assert reopened.tree.bloom_salt == salt
        # Recovered filters answer through the persisted salt: present
        # keys hit, absent keys (non-stride) are overwhelmingly pruned.
        assert reopened.get(4) == "v1"
        assert reopened.get(5, default=None) is None
        reopened.close()

    def test_doctor_verifies_persisted_salt(self, tmp_path):
        from repro.core.engine import AcheronEngine
        from repro.tools.doctor import diagnose_store

        directory = str(tmp_path / "store")
        engine = AcheronEngine.acheron(
            directory=directory,
            bloom_salted=True,
            memtable_entries=64,
            entries_per_page=8,
        )
        for k in range(100):
            engine.put(k, f"v{k}")
        engine.close()
        report = diagnose_store(directory)
        assert report.healthy
        assert any("bloom salt persisted" in c for c in report.checks_passed)

    def test_unsalted_store_stays_byte_compatible(self, tmp_path):
        """Default (unsalted) manifests must not carry the salt key."""
        from repro.core.engine import AcheronEngine
        from repro.storage.filestore import FileStore

        directory = str(tmp_path / "store")
        engine = AcheronEngine.acheron(
            directory=directory, memtable_entries=64, entries_per_page=8
        )
        for k in range(100):
            engine.put(k, f"v{k}")
        engine.close()
        manifest = FileStore(directory).read_manifest()
        assert "bloom_salt" not in manifest


# ---------------------------------------------------------------------------
# attack stream generators
# ---------------------------------------------------------------------------
class TestAdversaryStreams:
    def test_unknown_adversary_raises(self):
        with pytest.raises(WorkloadError):
            build_adversary("meltdown")

    @pytest.mark.parametrize("name", sorted(ADVERSARIES))
    def test_streams_are_seeded_and_shaped(self, name):
        ops = build_adversary(name, seed=11, preload=512, operations=400)
        again = build_adversary(name, seed=11, preload=512, operations=400)
        assert [(o.kind, o.key) for o in ops] == [
            (o.kind, o.key) for o in again
        ], "same seed must reproduce the stream"
        assert all(o.kind == OpKind.INSERT for o in ops[:512])
        assert len(ops) >= 512 + 400

    def test_hot_set_keys_span_distinct_pages(self):
        keys = hot_set_keys(4096)
        slots = [k // KEY_STRIDE for k in keys]
        # Evenly spread: no two hot keys within one 64-entry page.
        assert len(keys) == len(set(s // 64 for s in slots))

    def test_bloom_defeat_queries_are_absent_keys(self):
        ops = build_adversary(
            "bloom_defeat", seed=3, preload=512, operations=200,
            memtable_entries=128,
        )
        attack = ops[512:]
        assert all(o.kind == OpKind.EMPTY_QUERY for o in attack)
        assert all(o.key % KEY_STRIDE != 0 for o in attack)


# ---------------------------------------------------------------------------
# stats plumbing round-trip
# ---------------------------------------------------------------------------
class TestHardenedStatsRoundTrip:
    def test_new_counters_survive_json(self):
        engine = make_acheron(cache_pages=16, cache_hardened=True)
        for k in range(300):
            engine.put(k, f"v{k}")
        for k in range(300):
            engine.get(k)
        stats = engine.stats()
        payload = json.loads(json.dumps(stats.to_dict()))
        cache = payload["cache"]
        assert cache["hardened"] is True
        assert cache["doorkeeper_rejections"] >= 0
        assert cache["negative_guard_drops"] >= 0
        assert cache == engine.tree.cache.stats()

    def test_counters_present_and_zero_when_unhardened(self):
        engine = make_acheron(cache_pages=16)
        for k in range(100):
            engine.put(k, f"v{k}")
        cache = engine.tree.cache.stats()
        assert cache["hardened"] is False
        assert cache["doorkeeper_rejections"] == 0
        assert cache["negative_guard_drops"] == 0
