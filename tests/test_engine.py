"""Tests for the AcheronEngine facade and its stats snapshot."""

import pytest

from repro.core.engine import AcheronEngine
from repro.errors import EngineClosedError

from conftest import TINY, make_acheron, make_baseline


class TestFacade:
    def test_named_constructors_differ_only_in_delete_awareness(self):
        base = AcheronEngine.baseline(**TINY)
        ach = AcheronEngine.acheron(
            delete_persistence_threshold=500, pages_per_tile=4, **TINY
        )
        assert not base.config.fade_enabled and not base.config.kiwi_enabled
        assert ach.config.fade_enabled and ach.config.kiwi_enabled
        assert base.config.memtable_entries == ach.config.memtable_entries

    def test_basic_crud(self):
        engine = make_baseline()
        engine.put("user:1", b"blob")
        assert engine.get("user:1") == b"blob"
        assert engine.contains("user:1")
        engine.delete("user:1")
        assert engine.get("user:1") is None
        assert engine.get("user:1", default="gone") == "gone"

    def test_scan_via_facade(self):
        engine = make_baseline()
        for k in range(20):
            engine.put(k, k)
        assert [k for k, _ in engine.scan(3, 6)] == [3, 4, 5, 6]

    def test_custom_delete_key(self):
        engine = make_acheron()
        engine.put(1, "a", delete_key=777)
        engine.flush()
        report = engine.delete_range(777, 777)
        assert report.entries_deleted + report.memtable_entries_deleted == 1
        assert engine.get(1) is None

    def test_context_manager_closes(self):
        with make_baseline() as engine:
            engine.put(1, "x")
        with pytest.raises(EngineClosedError):
            engine.get(1)

    def test_compact_all(self):
        engine = make_baseline()
        for k in range(500):
            engine.put(k, k)
        for k in range(0, 500, 2):
            engine.delete(k)
        engine.compact_all()
        assert engine.tree.tombstone_count_on_disk == 0
        assert engine.get(1) == 1
        assert engine.get(2) is None

    def test_durable_engine_roundtrip(self, tmp_path):
        with AcheronEngine.acheron(
            delete_persistence_threshold=1000,
            pages_per_tile=4,
            directory=str(tmp_path),
            **TINY,
        ) as engine:
            engine.put(1, "persisted")
        reopened = AcheronEngine.acheron(
            delete_persistence_threshold=1000,
            pages_per_tile=4,
            directory=str(tmp_path),
            **TINY,
        )
        assert reopened.get(1) == "persisted"
        reopened.close()


@pytest.mark.usefixtures("serial_write_path")  # asserts schedule-exact counters
class TestStats:
    def test_stats_structure(self):
        engine = make_acheron()
        for k in range(300):
            engine.put(k, k)
        for k in range(50):
            engine.delete(k)
        engine.get(100)
        stats = engine.stats()
        assert stats.tick == engine.clock.now()
        assert stats.counters["puts"] == 300
        assert stats.counters["deletes"] == 50
        assert stats.flush_count >= 1
        assert stats.compaction_count >= 1
        assert stats.io.pages_written > 0
        assert stats.amplification.write_amplification > 0
        assert stats.persistence.registered == 50
        assert stats.shape, "per-level summaries must be present"

    def test_persistence_stats_without_tracker(self):
        from repro.config import baseline_config

        engine = AcheronEngine(baseline_config(**TINY), track_persistence=False)
        engine.put(1, "x")
        engine.delete(1)
        stats = engine.persistence_stats()
        assert stats.registered == 0  # nothing observed, nothing crashes

    def test_shape_reflects_levels(self):
        engine = make_baseline()
        for k in range(600):
            engine.put(k, k)
        shape = engine.stats().shape
        assert [s.index for s in shape] == list(range(1, len(shape) + 1))
        assert sum(s.entries for s in shape) == engine.tree.entry_count_on_disk

    def test_cache_hit_rate_exposed(self):
        engine = make_baseline(cache_pages=64)
        for k in range(300):
            engine.put(k, k)
        for _ in range(3):
            for k in range(0, 300, 50):
                engine.get(k)
        assert engine.stats().cache_hit_rate > 0


class TestStatsSerialization:
    def test_to_dict_is_json_safe(self):
        import json

        engine = make_acheron()
        for k in range(300):
            engine.put(k, k)
        for k in range(40):
            engine.delete(k)
        engine.get(100)
        payload = engine.stats().to_dict()
        text = json.dumps(payload)  # must not raise
        assert '"persistence"' in text
        assert payload["counters"]["puts"] == 300
        assert payload["tick"] == engine.clock.now()
        assert isinstance(payload["shape"], list)

    def test_to_dict_scrubs_non_finite_floats(self):
        import json

        engine = make_baseline()
        # An empty tree has space amp 1.0; force inf by faking: simplest
        # check is that a fresh engine's snapshot serializes cleanly.
        json.dumps(engine.stats().to_dict())


class TestComplianceReport:
    def test_report_fields_and_json_safety(self):
        import json

        engine = make_acheron(delete_persistence_threshold=1000)
        for k in range(500):
            engine.put(k, k)
        for k in range(100):
            engine.delete(k)
        report = engine.compliance_report()
        json.dumps(report)
        assert report["guarantee_ticks"] == 1000
        assert report["deletes_registered"] == 100
        assert (
            report["deletes_persisted"]
            + report["deletes_superseded"]
            + report["deletes_pending"]
            == 100
        )
        assert report["logically_dead_bytes_on_disk"] >= 0

    def test_compliant_after_drain(self):
        engine = make_acheron(delete_persistence_threshold=500)
        for k in range(300):
            engine.put(k, k)
        for k in range(50):
            engine.delete(k)
        engine.advance_time(600)
        report = engine.compliance_report()
        assert report["compliant"]
        assert report["deletes_pending"] == 0
        assert report["deadline_violations"] == 0

    def test_baseline_reports_no_guarantee(self):
        engine = make_baseline()
        engine.put(1, "x")
        engine.delete(1)
        report = engine.compliance_report()
        assert report["guarantee_ticks"] is None
