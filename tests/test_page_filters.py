"""Tests for KiWi per-page filters (the weave's point-read mitigation)."""

import pytest

from repro.config import LSMConfig
from repro.core.engine import AcheronEngine
from repro.config import acheron_config

from conftest import TINY


def woven_engine(page_filters: bool, h: int = 4, **overrides):
    params = dict(TINY)
    params.update(overrides)
    return AcheronEngine(
        acheron_config(
            delete_persistence_threshold=10**6,
            pages_per_tile=h,
            kiwi_page_filters=page_filters,
            **params,
        )
    )


def load_shuffled(engine, count=800):
    for k in range(count):
        engine.put((k * 37) % count, f"v{k}")
    engine.flush()
    return count


class TestPageFilters:
    def test_config_serialization_roundtrip(self):
        config = LSMConfig(pages_per_tile=4, kiwi_page_filters=True)
        assert LSMConfig.from_dict(config.to_dict()) == config

    def test_filters_attached_only_on_multi_page_tiles(self):
        engine = woven_engine(page_filters=True, h=4)
        load_shuffled(engine)
        saw_filter = False
        for level in engine.tree.iter_levels():
            for file in level.iter_files():
                for tile in file.tiles:
                    for page in tile.pages:
                        if len(tile.pages) > 1:
                            assert page.bloom is not None
                            saw_filter = True
                        else:
                            assert page.bloom is None
        assert saw_filter

    def test_disabled_by_default(self):
        engine = woven_engine(page_filters=False)
        load_shuffled(engine)
        for level in engine.tree.iter_levels():
            for file in level.iter_files():
                for tile in file.tiles:
                    assert all(page.bloom is None for page in tile.pages)

    def test_reads_stay_correct(self):
        engine = woven_engine(page_filters=True, h=8)
        count = load_shuffled(engine)
        values = {(k * 37) % count: f"v{k}" for k in range(count)}
        for k in range(0, count, 13):
            assert engine.get(k) == values[k]
        assert engine.get(10**9) is None

    def test_filters_cut_point_read_io(self):
        with_filters = woven_engine(page_filters=True, h=8)
        without = woven_engine(page_filters=False, h=8)
        count = load_shuffled(with_filters)
        load_shuffled(without)

        def probe_cost(engine):
            stats = engine.disk.stats
            before = stats.pages_read
            for k in range(0, count, 3):
                engine.get(k)
            return stats.pages_read - before

        assert probe_cost(with_filters) < probe_cost(without)

    def test_secondary_delete_preserves_filters_on_rewritten_pages(self):
        engine = woven_engine(page_filters=True, h=4)
        load_shuffled(engine)
        report = engine.delete_range(0, engine.clock.now() // 2, method="kiwi")
        assert report.pages_rewritten > 0
        values = dict(engine.scan(0, 10**9))
        for key, value in list(values.items())[::7]:
            assert engine.get(key) == value
        # Rewritten pages in multi-page tiles keep their filters.
        for level in engine.tree.iter_levels():
            for file in level.iter_files():
                for tile in file.tiles:
                    if len(tile.pages) > 1:
                        for page in tile.pages:
                            if page.bloom is not None:
                                for entry in page.entries:
                                    assert page.bloom.might_contain(entry.key)

    def test_filters_survive_restart(self, tmp_path):
        from repro.lsm.tree import LSMTree

        params = dict(TINY)
        config = acheron_config(
            delete_persistence_threshold=10**6,
            pages_per_tile=4,
            kiwi_page_filters=True,
            **params,
        )
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(400):
                tree.put((k * 37) % 400, f"v{k}")
        reopened = LSMTree.open(None, tmp_path)
        assert reopened.config.kiwi_page_filters
        found = False
        for level in reopened.iter_levels():
            for file in level.iter_files():
                for tile in file.tiles:
                    if len(tile.pages) > 1:
                        assert all(p.bloom is not None for p in tile.pages)
                        found = True
        assert found

    def test_no_false_negatives_through_engine(self):
        engine = woven_engine(page_filters=True, h=8, bloom_bits_per_key=2.0)
        count = load_shuffled(engine, 600)
        values = {(k * 37) % count: f"v{k}" for k in range(count)}
        for key, value in values.items():
            assert engine.get(key) == value
