"""Tests for the demo layer: inspector rendering and scripted scenarios."""

import pytest

from repro.demo.inspector import TreeInspector
from repro.demo.scenarios import DemoScenario, run_side_by_side
from repro.workload.spec import OpKind, WorkloadSpec

from conftest import TINY, make_acheron, make_baseline


@pytest.mark.usefixtures("serial_write_path")  # renders schedule-exact level shapes
class TestInspector:
    def _inspector(self):
        engine = make_acheron(delete_persistence_threshold=2000)
        for k in range(700):
            engine.put(k, k)
        for k in range(0, 700, 3):
            engine.delete(k)
        return TreeInspector(engine, name="test")

    def test_levels_table_has_buffer_and_levels(self):
        text = self._inspector().levels_table()
        assert "buf" in text
        assert "L1" in text
        assert "cum-TTL" in text
        assert "tick" in text

    def test_persistence_table_shows_threshold(self):
        text = self._inspector().persistence_table()
        assert "threshold D_th" in text
        assert "2,000" in text
        assert "compliant" in text

    def test_io_table_shows_categories_and_amplification(self):
        text = self._inspector().io_table()
        assert "write:flush" in text
        assert "write amplification" in text
        assert "space amplification" in text

    def test_compaction_history_bounded(self):
        inspector = self._inspector()
        text = inspector.compaction_history(last=3)
        data_lines = [l for l in text.splitlines() if l.startswith("|")]
        assert len(data_lines) <= 4  # header + at most 3 rows

    def test_dashboard_combines_all_views(self):
        text = self._inspector().dashboard()
        for fragment in ("tree @", "persistence", "I/O", "recent compactions"):
            assert fragment in text

    def test_inspector_on_baseline_engine(self):
        engine = make_baseline()
        for k in range(100):
            engine.put(k, k)
        text = TreeInspector(engine, name="base").dashboard()
        assert "base" in text


class TestScenarios:
    def _spec(self):
        return WorkloadSpec(
            operations=400,
            preload=300,
            weights={
                OpKind.INSERT: 0.5,
                OpKind.POINT_DELETE: 0.2,
                OpKind.POINT_QUERY: 0.3,
            },
            seed=42,
        )

    def test_side_by_side_runs_both_engines(self):
        scenario = run_side_by_side(
            self._spec(), delete_persistence_threshold=500, **TINY
        )
        assert set(scenario.results) == {"baseline", "acheron"}
        for result in scenario.results.values():
            assert result.operations == 700

    def test_captures_at_checkpoints(self):
        scenario = run_side_by_side(
            self._spec(), delete_persistence_threshold=500, **TINY
        )
        names = {c.engine_name for c in scenario.captures}
        assert names == {"baseline", "acheron"}
        assert len(scenario.captures) >= 4  # >= 2 checkpoints x 2 engines

    def test_render_contains_dashboards(self):
        scenario = run_side_by_side(
            self._spec(), delete_persistence_threshold=500, **TINY
        )
        text = scenario.render()
        assert "=== baseline ::" in text
        assert "=== acheron ::" in text
        assert "persistence" in text

    def test_custom_engine_set(self):
        scenario = DemoScenario(
            spec=self._spec(),
            engines={"only": lambda: make_baseline()},
            checkpoints=1,
        ).run()
        assert list(scenario.results) == ["only"]

    def test_identical_stream_for_every_engine(self):
        # The scenario materializes the operation stream once, so both
        # engines execute the same op counts per kind.
        scenario = run_side_by_side(
            self._spec(), delete_persistence_threshold=500, **TINY
        )
        base = scenario.results["baseline"]
        ach = scenario.results["acheron"]
        for kind, stats in base.per_kind.items():
            assert ach.per_kind[kind].count == stats.count
