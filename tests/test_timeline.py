"""Tests for the timeline sampler and sparkline rendering."""

import pytest

from repro.metrics.reporting import sparkline
from repro.metrics.timeline import SERIES, Timeline, TimelineSampler

from conftest import make_acheron, make_baseline


class TestSparkline:
    def test_empty_is_blank(self):
        assert sparkline([], width=10) == " " * 10

    def test_fixed_width(self):
        assert len(sparkline([1, 2, 3], width=40)) == 40
        assert len(sparkline(list(range(500)), width=40)) == 40

    def test_monotone_series_ramps_up(self):
        chart = sparkline(list(range(10)), width=10).rstrip()
        assert chart[0] == " "  # minimum maps to the lowest level
        assert chart[-1] == "@"  # maximum maps to the highest

    def test_flat_series_is_mid_level(self):
        chart = sparkline([5, 5, 5], width=10)
        assert set(chart.strip()) == {"+"}

    def test_downsampling_preserves_trend(self):
        values = list(range(1000))
        chart = sparkline(values, width=20).rstrip()
        levels = [chart.index(c) if False else c for c in chart]
        # First char must be a lower ramp level than the last.
        ramp = " .:-=+*#%@"
        assert ramp.index(chart[0]) < ramp.index(chart[-1])

    def test_handles_negative_and_float(self):
        chart = sparkline([-1.5, 0.0, 2.5], width=10)
        assert len(chart) == 10


@pytest.mark.usefixtures("serial_write_path")  # asserts schedule-exact counters
class TestTimeline:
    def test_empty_timeline(self):
        timeline = Timeline()
        assert len(timeline) == 0
        assert timeline.render() == "(no samples)"
        with pytest.raises(ValueError):
            timeline.final("entries_on_disk")
        with pytest.raises(ValueError):
            timeline.peak("entries_on_disk")

    def test_sampler_validation(self):
        with pytest.raises(ValueError):
            TimelineSampler(make_baseline(), every=0)

    def test_sampler_records_all_series(self):
        engine = make_acheron()
        sampler = TimelineSampler(engine, every=100)
        for k in range(500):
            engine.put(k, k)
            sampler.maybe_sample()
        timeline = sampler.timeline
        assert len(timeline) >= 4
        for name in SERIES:
            assert len(timeline.values(name)) == len(timeline)

    def test_maybe_sample_respects_interval(self):
        engine = make_baseline()
        sampler = TimelineSampler(engine, every=1_000)
        took = 0
        for k in range(100):
            engine.put(k, k)
            took += sampler.maybe_sample()
        assert took == 1  # only the very first call sampled

    def test_ticks_are_monotone(self):
        engine = make_baseline()
        sampler = TimelineSampler(engine, every=50)
        for k in range(400):
            engine.put(k, k)
            sampler.maybe_sample()
        ticks = sampler.timeline.ticks
        assert ticks == sorted(ticks)

    def test_pending_series_tracks_tracker(self):
        engine = make_acheron(delete_persistence_threshold=10**6)
        for k in range(700):
            engine.put(k, k)
        for k in range(100):
            engine.delete(k)
        sampler = TimelineSampler(engine, every=1)
        sampler.sample()
        assert sampler.timeline.final("pending_deletes") == engine.tracker.pending_count

    def test_render_shows_every_series(self):
        engine = make_baseline()
        sampler = TimelineSampler(engine, every=10)
        for k in range(200):
            engine.put(k, k)
            sampler.maybe_sample()
        text = sampler.timeline.render(width=30)
        for name in SERIES:
            assert name in text

    def test_final_and_peak(self):
        timeline = Timeline()
        timeline.ticks.extend([1, 2, 3])
        for name in SERIES:
            timeline.series[name].extend([1.0, 5.0, 2.0])
        assert timeline.final("compactions") == 2.0
        assert timeline.peak("compactions") == 5.0

    def test_baseline_pending_grows_acheron_bounded(self):
        # The timeline view of the F1 claim.
        def pending_series(engine):
            sampler = TimelineSampler(engine, every=300)
            for k in range(1_200):
                engine.put(k, k)
            for k in range(0, 1_200, 3):
                engine.delete(k)
                sampler.maybe_sample()
            for k in range(1_200, 2_400):
                engine.put(k, k)
                sampler.maybe_sample()
            return sampler.timeline.values("pending_deletes")

        base = pending_series(make_baseline())
        ach = pending_series(make_acheron(delete_persistence_threshold=400))
        assert max(ach) < max(base)
