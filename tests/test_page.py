"""Unit and property tests for pages, delete tiles, and the KiWi weave."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.entry import Entry
from repro.lsm.page import DeleteTile, Page, weave_tile


def put(key, seqno=None, dkey=None, t=0):
    return Entry.put(key, f"v{key}", seqno if seqno is not None else key + 1, t, dkey)


def tomb(key, seqno, t=0):
    return Entry.tombstone(key, seqno, write_time=t)


class TestPage:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Page([])

    def test_bounds_and_counts(self):
        page = Page([put(1, dkey=50), tomb(3, 10, t=7), put(5, dkey=2)])
        assert page.min_key == 1 and page.max_key == 5
        assert page.min_delete_key == 2 and page.max_delete_key == 50
        assert page.tombstone_count == 1
        assert len(page) == 3

    def test_get_binary_search(self):
        page = Page([put(k) for k in range(0, 20, 2)])
        assert page.get(6).key == 6
        assert page.get(7) is None
        assert page.get(-1) is None
        assert page.get(99) is None

    def test_covers_key(self):
        page = Page([put(3), put(9)])
        assert page.covers_key(3) and page.covers_key(5) and page.covers_key(9)
        assert not page.covers_key(2) and not page.covers_key(10)

    def test_delete_range_classification(self):
        page = Page([put(1, dkey=10), put(2, dkey=20)])
        assert page.covered_by_delete_range(10, 20)
        assert page.covered_by_delete_range(5, 25)
        assert not page.covered_by_delete_range(11, 25)
        assert page.overlaps_delete_range(15, 30)
        assert not page.overlaps_delete_range(21, 30)
        assert not page.overlaps_delete_range(0, 9)


class TestDeleteTile:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DeleteTile([])

    def test_bounds_span_pages(self):
        tile = DeleteTile([Page([put(5, dkey=1)]), Page([put(2, dkey=9)])])
        assert tile.min_key == 2 and tile.max_key == 5
        assert tile.min_delete_key == 1 and tile.max_delete_key == 9
        assert tile.entry_count == 2

    def test_candidate_pages_checks_every_overlapping_page(self):
        # Sort-key ranges of pages inside a tile may overlap arbitrarily.
        tile = DeleteTile(
            [Page([put(1), put(10)]), Page([put(5), put(6)]), Page([put(20), put(30)])]
        )
        assert tile.candidate_page_indexes(6) == [0, 1]
        assert tile.candidate_page_indexes(25) == [2]
        assert tile.candidate_page_indexes(15) == []

    def test_iter_entries_sorted_merges_pages(self):
        tile = DeleteTile([Page([put(1), put(9)]), Page([put(4), put(7)])])
        assert [e.key for e in tile.iter_entries_sorted()] == [1, 4, 7, 9]


class TestWeave:
    def test_single_page_tile_keeps_sort_order(self):
        chunk = [put(k) for k in range(8)]
        tile = weave_tile(chunk, entries_per_page=8, pages_per_tile=1)
        assert len(tile.pages) == 1
        assert [e.key for e in tile.pages[0].entries] == list(range(8))

    def test_weave_partitions_delete_keys_across_pages(self):
        # 16 entries, delete keys reversed w.r.t. sort keys.
        chunk = [put(k, dkey=100 - k) for k in range(16)]
        tile = weave_tile(chunk, entries_per_page=4, pages_per_tile=4)
        assert len(tile.pages) == 4
        # Pages must partition the delete-key domain...
        for left, right in zip(tile.pages, tile.pages[1:]):
            assert left.max_delete_key <= right.min_delete_key
        # ...and each page must be internally sort-key ordered.
        for page in tile.pages:
            keys = [e.key for e in page.entries]
            assert keys == sorted(keys)
        # No entries lost.
        assert tile.entry_count == 16

    def test_weave_rejects_empty_chunk(self):
        with pytest.raises(ValueError):
            weave_tile([], 4, 4)

    def test_small_chunk_becomes_single_page(self):
        chunk = [put(k) for k in range(3)]
        tile = weave_tile(chunk, entries_per_page=8, pages_per_tile=4)
        assert len(tile.pages) == 1

    @given(
        st.lists(
            st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)),
            min_size=1,
            max_size=64,
            unique_by=lambda kv: kv[0],
        ),
        st.integers(1, 8),
        st.integers(1, 4),
    )
    @settings(max_examples=60)
    def test_property_weave_preserves_entries_and_partitions_dkeys(
        self, pairs, entries_per_page, pages_per_tile
    ):
        chunk = sorted((put(k, dkey=d) for k, d in pairs), key=lambda e: e.key)
        tile = weave_tile(chunk, entries_per_page, pages_per_tile)
        woven = sorted(tile.iter_entries_sorted(), key=lambda e: e.key)
        assert [e.key for e in woven] == [e.key for e in chunk]
        if pages_per_tile > 1 and len(chunk) > entries_per_page:
            for left, right in zip(tile.pages, tile.pages[1:]):
                assert left.max_delete_key <= right.min_delete_key
        for page in tile.pages:
            assert len(page) <= entries_per_page
            keys = [e.key for e in page.entries]
            assert keys == sorted(keys)
