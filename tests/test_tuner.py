"""The self-tuning compaction policy governor: cost model, hysteresis, switches.

Four contracts, mirroring DESIGN.md ("Self-tuning compaction"):

* **cost-model direction** -- the closed-form page-I/O model orders the
  policies the way the LSM design space does: write-heavy mixes price
  tiering cheapest, read/scan-heavy mixes price leveling cheapest, and
  lazy leveling sits between on both axes;
* **hysteresis** -- a challenger policy must win ``hysteresis``
  *consecutive* windows by at least ``min_advantage`` before a switch
  fires, a fresh switch is followed by ``cooldown_windows`` of silence,
  and an oscillating workload therefore never flips policy at all;
* **identity** -- the tuner is off by default (no stats section, no
  counters), refuses read-only engines, and a tuned engine's *contents*
  are identical to a static one's over the same stream (the tuner moves
  compaction work, never data); a mid-workload live switch yields the
  same logical contents as a fresh tree opened with the final policy,
  across worker counts, shard counts, and eager/lazy range deletes;
* **durability** -- per-shard policies (explicit overrides and tuner
  switches alike) survive close/reopen via the root manifest, splits
  inherit the parent's policy, and FADE's ``D_th`` compliance holds
  across every live switch.
"""

from __future__ import annotations

from random import Random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CompactionStyle, acheron_config, baseline_config
from repro.errors import ConfigError
from repro.lsm.compaction.tuner import (
    POLICIES,
    CompactionTuner,
    PolicyCostModel,
    PolicyTunerConfig,
)
from repro.shard import POLICY_TUNER_ENV, ShardedEngine


@pytest.fixture(autouse=True)
def _no_ambient_tuner(monkeypatch):
    """These tests pin arming explicitly; strip the CI job's ambient
    ``REPRO_POLICY_TUNER`` so default-off assertions test the *default*."""
    monkeypatch.delenv(POLICY_TUNER_ENV, raising=False)


def make_sharded(shards=2, tuner=None, policies=None, **overrides):
    scale = {
        "memtable_entries": 64,
        "entries_per_page": 8,
        "size_ratio": 3,
        "cache_pages": 8,
    }
    scale.update(overrides)
    return ShardedEngine(
        baseline_config(**scale),
        shards=shards,
        key_space=(0, 4096),
        policy_tuner=tuner,
        shard_policies=policies,
    )


# ---------------------------------------------------------------------------
# config + cost-model basics
# ---------------------------------------------------------------------------
class TestTunerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_ops": 0},
            {"min_window_ops": -1},
            {"hysteresis": 0},
            {"cooldown_windows": -1},
            {"min_advantage": -0.1},
            {"read_probe_factor": -1.0},
            {"scan_page_span": 0.0},
            {"delete_drain_weight": -0.5},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PolicyTunerConfig(**kwargs)

    def test_defaults_valid(self):
        PolicyTunerConfig()  # does not raise


class TestPolicyCostModel:
    def setup_method(self):
        self.model = PolicyCostModel(PolicyTunerConfig())

    def test_write_amplification_ordering(self):
        # Per flushed entry: leveling rewrites each level ~T/2 times,
        # tiering once, lazy leveling once everywhere but the last level.
        amps = {
            p: PolicyCostModel.write_amplification(p, depth=4, size_ratio=4)
            for p in POLICIES
        }
        assert amps[CompactionStyle.TIERING] < amps[CompactionStyle.LAZY_LEVELING]
        assert amps[CompactionStyle.LAZY_LEVELING] < amps[CompactionStyle.LEVELING]

    def test_expected_runs_ordering(self):
        # Sorted-run count (the read/scan fan-in) orders the other way.
        runs = {
            p: PolicyCostModel.expected_runs(p, depth=4, size_ratio=4)
            for p in POLICIES
        }
        assert runs[CompactionStyle.LEVELING] < runs[CompactionStyle.LAZY_LEVELING]
        assert runs[CompactionStyle.LAZY_LEVELING] < runs[CompactionStyle.TIERING]

    def test_write_heavy_mix_prices_tiering_cheapest(self):
        counts = {"write": 10_000, "delete": 500, "read": 100, "scan": 0}
        costs = self.model.costs(counts, depth=4, size_ratio=4, entries_per_page=8)
        assert min(costs, key=costs.get) is CompactionStyle.TIERING

    def test_read_heavy_mix_prices_leveling_cheapest(self):
        counts = {"write": 100, "delete": 0, "read": 10_000, "scan": 0}
        costs = self.model.costs(counts, depth=4, size_ratio=4, entries_per_page=8)
        assert min(costs, key=costs.get) is CompactionStyle.LEVELING

    def test_scan_heavy_mix_prices_leveling_cheapest(self):
        counts = {"write": 100, "delete": 0, "read": 0, "scan": 2_000}
        costs = self.model.costs(counts, depth=4, size_ratio=4, entries_per_page=8)
        assert min(costs, key=costs.get) is CompactionStyle.LEVELING

    def test_empty_window_costs_zero(self):
        counts = {"write": 0, "delete": 0, "read": 0, "scan": 0}
        costs = self.model.costs(counts, depth=3, size_ratio=4, entries_per_page=8)
        assert all(c == 0.0 for c in costs.values())


# ---------------------------------------------------------------------------
# hysteresis: the no-oscillation contract (unit-level)
# ---------------------------------------------------------------------------
READ_HEAVY = {"read": 900, "write": 50, "delete": 0, "scan": 0}
WRITE_HEAVY = {"write": 900, "read": 50, "delete": 0, "scan": 0}


def run_window(tuner, counts, policy, tick=0):
    """Feed one window of ops for shard 0 and force an evaluation."""
    for kind, n in counts.items():
        if n:
            tuner.note_ops(0, kind, n)
    signals = {
        0: {"policy": policy, "depth": 4, "size_ratio": 4, "entries_per_page": 8}
    }
    return tuner.evaluate(signals, tick=tick)


class TestHysteresis:
    def make(self, **overrides):
        kwargs = dict(
            window_ops=64, min_window_ops=0, hysteresis=2, cooldown_windows=0
        )
        kwargs.update(overrides)
        return CompactionTuner(PolicyTunerConfig(**kwargs))

    def test_no_switch_before_hysteresis_wins(self):
        tuner = self.make(hysteresis=3)
        assert run_window(tuner, READ_HEAVY, CompactionStyle.TIERING) == []
        assert run_window(tuner, READ_HEAVY, CompactionStyle.TIERING) == []
        decisions = run_window(tuner, READ_HEAVY, CompactionStyle.TIERING)
        assert decisions == [{"shard": 0, "policy": CompactionStyle.LEVELING}]
        assert tuner.switch_count == 1

    def test_interrupted_streak_resets(self):
        tuner = self.make(hysteresis=2)
        assert run_window(tuner, READ_HEAVY, CompactionStyle.TIERING) == []
        # One write-heavy window: the challenger's streak dies with it.
        assert run_window(tuner, WRITE_HEAVY, CompactionStyle.TIERING) == []
        assert run_window(tuner, READ_HEAVY, CompactionStyle.TIERING) == []
        assert run_window(tuner, READ_HEAVY, CompactionStyle.TIERING) != []

    def test_oscillating_mix_never_switches(self):
        tuner = self.make(hysteresis=2)
        for i in range(20):
            counts = READ_HEAVY if i % 2 == 0 else WRITE_HEAVY
            assert run_window(tuner, counts, CompactionStyle.TIERING, tick=i) == []
        assert tuner.switch_count == 0

    def test_cooldown_blocks_the_rebound(self):
        tuner = self.make(hysteresis=1, cooldown_windows=2)
        assert run_window(tuner, READ_HEAVY, CompactionStyle.TIERING) != []
        # The workload flips back immediately: two windows of silence.
        assert run_window(tuner, WRITE_HEAVY, CompactionStyle.LEVELING) == []
        assert run_window(tuner, WRITE_HEAVY, CompactionStyle.LEVELING) == []
        assert run_window(tuner, WRITE_HEAVY, CompactionStyle.LEVELING) != []
        assert tuner.switch_count == 2

    def test_marginal_advantage_does_not_switch(self):
        tuner = self.make(hysteresis=1, min_advantage=0.99)
        for _ in range(5):
            assert run_window(tuner, READ_HEAVY, CompactionStyle.TIERING) == []
        assert tuner.switch_count == 0

    def test_below_min_window_ops_no_evaluation(self):
        tuner = self.make(min_window_ops=10_000)
        assert run_window(tuner, READ_HEAVY, CompactionStyle.TIERING) == []
        assert tuner.windows_evaluated == 0

    def test_incumbent_wins_ties(self):
        # At depth 1 a pure-read mix prices leveling and lazy leveling
        # identically (one sorted run either way): the incumbent must
        # keep the tie, whichever of the two it is.
        for incumbent in (CompactionStyle.LEVELING, CompactionStyle.LAZY_LEVELING):
            tuner = self.make(hysteresis=1)
            reads = {"read": 1_000, "write": 0, "delete": 0, "scan": 0}
            for _ in range(3):
                signals = {
                    0: {
                        "policy": incumbent,
                        "depth": 1,
                        "size_ratio": 4,
                        "entries_per_page": 8,
                    }
                }
                for kind, n in reads.items():
                    if n:
                        tuner.note_ops(0, kind, n)
                assert tuner.evaluate(signals) == []
            assert tuner.switch_count == 0


# ---------------------------------------------------------------------------
# engine integration: identity, overrides, durability
# ---------------------------------------------------------------------------
def drifting_stream(n, seed=11):
    """Writes early, reads late: the mix the tuner is built to follow."""
    rng = Random(seed)
    ops = []
    for i in range(n):
        if i < n // 2 or rng.random() < 0.1:
            ops.append(("put", rng.randrange(4096), f"v{i}"))
        else:
            ops.append(("get", rng.randrange(4096), None))
    return ops


class TestTunedEngine:
    def test_tuner_off_by_default_and_stats_empty(self):
        engine = make_sharded()
        try:
            engine.put(1, "a")
            stats = engine.stats()
            assert stats.policy is None
            assert stats.to_dict()["policy"] == {}
            assert "policy_switches" not in stats.counters
        finally:
            engine.close()

    def test_env_var_arms_default_tuner(self, monkeypatch, tmp_path):
        monkeypatch.setenv(POLICY_TUNER_ENV, "1")
        engine = make_sharded()
        try:
            engine.put(1, "a")
            assert engine.stats().policy is not None
        finally:
            engine.close()
        # Explicit False pins a store static regardless of the ambient.
        engine = make_sharded(tuner=False)
        try:
            assert engine.stats().policy is None
        finally:
            engine.close()
        # The ambient never applies to (and never breaks) read-only opens.
        root = str(tmp_path / "store")
        writer = ShardedEngine(
            baseline_config(memtable_entries=64, entries_per_page=8),
            directory=root,
            shards=2,
            key_space=(0, 4096),
        )
        writer.put(1, "a")
        writer.close()
        reader = ShardedEngine(None, directory=root, read_only=True)
        try:
            assert reader.stats().policy is None
        finally:
            reader.close()

    def test_requires_writable_engine(self, tmp_path):
        root = str(tmp_path / "store")
        engine = ShardedEngine(
            baseline_config(memtable_entries=64, entries_per_page=8),
            directory=root,
            shards=2,
            key_space=(0, 4096),
        )
        engine.put(1, "a")
        engine.close()
        with pytest.raises(ConfigError):
            ShardedEngine(None, directory=root, read_only=True, policy_tuner=True)

    def test_tuned_contents_identical_to_static(self):
        ops = drifting_stream(4_000)
        contents = {}
        switches = {}
        for arm, tuner in (
            ("static", None),
            (
                "tuned",
                PolicyTunerConfig(
                    window_ops=128, min_window_ops=16, hysteresis=2,
                    cooldown_windows=1,
                ),
            ),
        ):
            engine = make_sharded(tuner=tuner, policy=CompactionStyle.TIERING)
            try:
                for op, key, value in ops:
                    if op == "put":
                        engine.put(key, value)
                    else:
                        engine.get(key)
                engine.write_barrier()
                contents[arm] = list(engine.scan(0, 4096))
                switches[arm] = sum(
                    r["policy_switches"] for r in engine.stats().shards
                )
                engine.verify_invariants()
            finally:
                engine.close()
        assert contents["tuned"] == contents["static"]
        assert switches["static"] == 0
        # The read-heavy back half must have pulled at least one shard
        # off tiering; the identity above proves it moved no data.
        assert switches["tuned"] > 0

    def test_tuned_stats_section_and_events(self):
        tuner = PolicyTunerConfig(
            window_ops=128, min_window_ops=16, hysteresis=2, cooldown_windows=1
        )
        engine = make_sharded(tuner=tuner, policy=CompactionStyle.TIERING)
        try:
            for op, key, value in drifting_stream(4_000):
                if op == "put":
                    engine.put(key, value)
                else:
                    engine.get(key)
            stats = engine.stats()
            assert stats.policy is not None
            assert stats.policy["windows_evaluated"] > 0
            assert stats.policy["switches"] == stats.counters["policy_switches"]
            assert stats.policy["switches"] > 0
            events = engine.policy_events
            assert any(e["event"] == "switch" for e in events)
            # Stats rows mirror the live trees.
            for row, shard in zip(stats.shards, engine.shards):
                assert row["policy"] == shard.tree.config.policy.value
        finally:
            engine.close()

    def test_per_shard_overrides_without_tuner(self):
        engine = make_sharded(shards=4, policies={1: "tiering", 3: "lazy_leveling"})
        try:
            got = [s.tree.config.policy for s in engine.shards]
            assert got == [
                CompactionStyle.LEVELING,
                CompactionStyle.TIERING,
                CompactionStyle.LEVELING,
                CompactionStyle.LAZY_LEVELING,
            ]
            assert engine.stats().policy is None  # overrides arm no tuner
        finally:
            engine.close()

    def test_invalid_override_rejected(self):
        with pytest.raises(ConfigError):
            make_sharded(policies={0: "compactions_maybe"})
        with pytest.raises(ConfigError):
            make_sharded(shards=2, policies={7: "tiering"})

    def test_shard_policies_survive_reopen(self, tmp_path):
        root = str(tmp_path / "store")
        config = baseline_config(memtable_entries=64, entries_per_page=8)
        engine = ShardedEngine(
            config,
            directory=root,
            shards=2,
            key_space=(0, 4096),
            shard_policies={0: "tiering"},
        )
        for i in range(200):
            engine.put(i * 16, f"v{i}")
        assert engine.set_shard_policy(1, "lazy_leveling") is True
        engine.close()
        reopened = ShardedEngine(None, directory=root)
        try:
            assert [s.tree.config.policy for s in reopened.shards] == [
                CompactionStyle.TIERING,
                CompactionStyle.LAZY_LEVELING,
            ]
            assert dict(reopened.scan(0, 4096)) == {
                i * 16: f"v{i}" for i in range(200)
            }
        finally:
            reopened.close()

    def test_split_inherits_parent_policy(self):
        engine = make_sharded(shards=2, policies={0: "tiering"})
        try:
            for i in range(400):
                engine.put(i, f"v{i}")  # load shard 0's half of the space
            engine.split_shard(0)
            assert [s.tree.config.policy for s in engine.shards] == [
                CompactionStyle.TIERING,
                CompactionStyle.TIERING,
                CompactionStyle.LEVELING,
            ]
            assert engine.shard_policies == [
                CompactionStyle.TIERING,
                CompactionStyle.TIERING,
                CompactionStyle.LEVELING,
            ]
        finally:
            engine.close()

    def test_dth_compliance_across_live_switch(self):
        engine = make_sharded(shards=2, policy=CompactionStyle.TIERING)
        try:
            for i in range(600):
                engine.put(i * 4, f"v{i}")
            for i in range(0, 600, 3):
                engine.delete(i * 4)
            assert engine.set_policy(CompactionStyle.LEVELING) == 2
            for shard in engine.shards:
                # The drain consolidated every level to a single run.
                for level in shard.tree.iter_levels():
                    assert len(level.runs) <= 1
            engine.compact_all()
            stats = engine.persistence_stats()
            assert stats.violations == 0
            engine.verify_invariants()
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# the equivalence property: a live switch is invisible to contents
# ---------------------------------------------------------------------------
class TestSwitchEquivalence:
    @given(
        st.lists(st.integers(0, 200), min_size=1, max_size=120),
        st.integers(0, 250),
        st.integers(0, 250),
        st.sampled_from([1, 4]),
        st.sampled_from([1, 4]),
        st.sampled_from(["eager", "lazy"]),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_midworkload_switch_matches_final_policy(
        self, keys, a, b, workers, shards, method
    ):
        from repro.core.engine import AcheronEngine

        lo, hi = min(a, b), max(a, b)
        base = acheron_config(
            delete_persistence_threshold=10**6,
            pages_per_tile=3,
            memtable_entries=64,
            entries_per_page=8,
            size_ratio=3,
        )

        def build(policy):
            config = base.with_updates(policy=policy)
            if shards > 1:
                return ShardedEngine(
                    config, shards=shards, key_space=(0, 256), workers=workers
                )
            return AcheronEngine(config, workers=workers)

        switched = build(CompactionStyle.TIERING)
        fresh = build(CompactionStyle.LEVELING)
        try:
            half = len(keys) // 2
            for key in keys[:half]:
                switched.put(key, f"v{key}")
                fresh.put(key, f"v{key}")
            switched.set_policy(CompactionStyle.LEVELING)
            for key in keys[half:]:
                switched.put(key, f"w{key}")
                fresh.put(key, f"w{key}")
            switched.delete_range(lo, hi, method=method)
            fresh.delete_range(lo, hi, method=method)
            assert dict(switched.scan(-1, 10**9)) == dict(fresh.scan(-1, 10**9))
            switched.compact_all()
            fresh.compact_all()
            assert dict(switched.scan(-1, 10**9)) == dict(fresh.scan(-1, 10**9))
            switched.verify_invariants()
        finally:
            switched.close()
            fresh.close()
