"""Unit tests for the persistence tracker (the delete lifecycle observer)."""

import pytest

from repro.core.persistence import NullListener, PersistenceTracker
from repro.lsm.entry import Entry


def tomb(key, seqno, t):
    return Entry.tombstone(key, seqno, write_time=t)


class TestLifecycle:
    def test_register_then_persist_records_latency(self):
        tracker = PersistenceTracker(threshold=100)
        entry = tomb(1, 1, t=10)
        tracker.tombstone_registered(entry, 10)
        tracker.tombstone_persisted(entry, 60)
        assert tracker.latencies == [50]
        assert tracker.persisted_count == 1
        assert tracker.pending_count == 0
        assert tracker.violations == 0

    def test_latency_over_threshold_counts_violation(self):
        tracker = PersistenceTracker(threshold=100)
        entry = tomb(1, 1, t=0)
        tracker.tombstone_registered(entry, 0)
        tracker.tombstone_persisted(entry, 101)
        assert tracker.violations == 1

    def test_latency_exactly_at_threshold_is_compliant(self):
        tracker = PersistenceTracker(threshold=100)
        entry = tomb(1, 1, t=0)
        tracker.tombstone_registered(entry, 0)
        tracker.tombstone_persisted(entry, 100)
        assert tracker.violations == 0
        assert tracker.stats(now=100).compliant()

    def test_superseded_removes_from_pending(self):
        tracker = PersistenceTracker()
        entry = tomb(1, 1, t=0)
        tracker.tombstone_registered(entry, 0)
        tracker.tombstone_superseded(entry, 5)
        assert tracker.pending_count == 0
        assert tracker.superseded_count == 1
        assert tracker.latencies == []  # supersession is not persistence

    def test_unmatched_events_are_counted_not_raised(self):
        tracker = PersistenceTracker()
        tracker.tombstone_persisted(tomb(1, 1, t=0), 5)
        tracker.tombstone_superseded(tomb(2, 2, t=0), 5)
        assert tracker.unmatched_events == 2
        # The persisted event still records a latency from write_time.
        assert tracker.latencies == [5]

    def test_pending_ages_sorted(self):
        tracker = PersistenceTracker()
        tracker.tombstone_registered(tomb(1, 1, t=10), 10)
        tracker.tombstone_registered(tomb(2, 2, t=30), 30)
        assert tracker.pending_ages(now=40) == [10, 30]


class TestStats:
    def _tracked(self, latencies, threshold=None):
        tracker = PersistenceTracker(threshold=threshold)
        for i, latency in enumerate(latencies):
            entry = tomb(i, i + 1, t=0)
            tracker.tombstone_registered(entry, 0)
            tracker.tombstone_persisted(entry, latency)
        return tracker

    def test_percentiles(self):
        tracker = self._tracked(list(range(1, 101)))
        assert tracker.latency_percentile(0.5) == 50
        assert tracker.latency_percentile(0.99) == 99
        assert tracker.latency_percentile(1.0) == 100

    def test_percentile_validation(self):
        tracker = self._tracked([1])
        with pytest.raises(ValueError):
            tracker.latency_percentile(0.0)
        with pytest.raises(ValueError):
            tracker.latency_percentile(1.5)

    def test_percentile_of_empty_is_none(self):
        assert PersistenceTracker().latency_percentile(0.5) is None

    def test_stats_snapshot(self):
        tracker = self._tracked([10, 20, 30], threshold=25)
        tracker.tombstone_registered(tomb(99, 100, t=5), 5)
        stats = tracker.stats(now=50)
        assert stats.registered == 4
        assert stats.persisted == 3
        assert stats.pending == 1
        assert stats.max_latency == 30
        assert stats.mean_latency == pytest.approx(20.0)
        assert stats.violations == 1
        assert stats.oldest_pending_age == 45

    def test_compliance_requires_pending_under_threshold(self):
        tracker = PersistenceTracker(threshold=10)
        tracker.tombstone_registered(tomb(1, 1, t=0), 0)
        assert tracker.stats(now=5).compliant()
        assert not tracker.stats(now=11).compliant()

    def test_no_threshold_is_always_compliant(self):
        tracker = PersistenceTracker()
        tracker.tombstone_registered(tomb(1, 1, t=0), 0)
        assert tracker.stats(now=10**9).compliant()

    def test_empty_tracker_stats(self):
        stats = PersistenceTracker(threshold=10).stats(now=0)
        assert stats.max_latency is None
        assert stats.mean_latency is None
        assert stats.compliant()


class TestNullListener:
    def test_accepts_all_events(self):
        listener = NullListener()
        entry = tomb(1, 1, t=0)
        listener.tombstone_registered(entry, 0)
        listener.tombstone_persisted(entry, 1)
        listener.tombstone_superseded(entry, 2)
