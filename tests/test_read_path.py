"""The read-path overhaul: pruned lookups, the fused scan, and the block
cache wired into the tree.

Three layers of assurance:

* property tests that the overhauled ``get``/``scan`` (with and without a
  cache attached) stay byte-identical to a model dict, including reverse
  scans, ``limit`` truncation, and tombstone-heavy cross-level ranges;
* cache-coherence checks across flush/compaction/recovery -- every cached
  page must belong to a currently-live file, and recovery GC must never
  reuse a garbage-collected file id;
* counter/observability checks: the per-level probe/skip/serve accounting
  and the cache stats surfaced through ``read_stats`` and the inspector.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CompactionStyle, baseline_config
from repro.demo.inspector import TreeInspector
from repro.lsm.tree import LSMTree
from repro.storage.filestore import FileStore

from conftest import TINY, make_acheron, make_baseline

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# Tombstone-heavy op mix: two delete codes out of five, so generated
# sequences routinely bury live keys under cross-level tombstones.
heavy_delete_op = st.tuples(
    st.sampled_from([0, 1, 1, 2, 3]), st.integers(0, 120), st.integers(0, 10_000)
)


def apply_and_check(engine, ops):
    """Replay ``ops`` against the engine and a model dict, checking every
    read (point, range, reverse range, limited range) as it happens."""
    model = {}
    for code, key, payload in ops:
        if code == 0:
            engine.put(key, payload)
            model[key] = payload
        elif code == 1:
            engine.delete(key)
            model.pop(key, None)
        elif code == 2:
            assert engine.get(key) == model.get(key)
        else:
            lo, hi = key, key + (payload % 40)
            expected = sorted((k, v) for k, v in model.items() if lo <= k <= hi)
            assert list(engine.scan(lo, hi)) == expected
            assert list(engine.scan(lo, hi, reverse=True)) == expected[::-1]
            limit = 1 + payload % 7
            assert list(engine.scan(lo, hi, limit=limit)) == expected[:limit]
            assert (
                list(engine.scan(lo, hi, limit=limit, reverse=True))
                == expected[::-1][:limit]
            )
    assert dict(engine.scan(-(10**9), 10**9)) == model
    engine.tree.check_invariants()
    return model


class TestReadEquivalence:
    """get/scan results must not depend on the cache or the layout."""

    @given(st.lists(heavy_delete_op, max_size=250))
    @SETTINGS
    def test_baseline_with_cache(self, ops):
        apply_and_check(make_baseline(cache_pages=16), ops)

    @given(st.lists(heavy_delete_op, max_size=250))
    @SETTINGS
    def test_tiering_with_tiny_cache(self, ops):
        # A 2-page cache evicts constantly: admission/eviction churn must
        # never surface a stale page.
        apply_and_check(
            make_baseline(policy=CompactionStyle.TIERING, cache_pages=2), ops
        )

    @given(st.lists(heavy_delete_op, max_size=250))
    @SETTINGS
    def test_kiwi_multi_page_tiles_with_cache(self, ops):
        apply_and_check(
            make_acheron(
                delete_persistence_threshold=150, pages_per_tile=3, cache_pages=16
            ),
            ops,
        )

    @given(st.lists(heavy_delete_op, max_size=250))
    @SETTINGS
    def test_cached_engine_matches_uncached(self, ops):
        cached = make_baseline(cache_pages=8)
        uncached = make_baseline(cache_pages=0)
        for code, key, payload in ops:
            if code == 0:
                cached.put(key, payload)
                uncached.put(key, payload)
            elif code == 1:
                cached.delete(key)
                uncached.delete(key)
            elif code == 2:
                assert cached.get(key) == uncached.get(key)
            else:
                lo, hi = key, key + (payload % 40)
                assert list(cached.scan(lo, hi)) == list(uncached.scan(lo, hi))
        assert list(cached.scan(-(10**9), 10**9)) == list(
            uncached.scan(-(10**9), 10**9)
        )


class TestScanSemantics:
    def test_limit_zero_is_empty(self, baseline_engine):
        for k in range(100):
            baseline_engine.put(k, k)
        assert list(baseline_engine.scan(0, 99, limit=0)) == []
        assert list(baseline_engine.scan(0, 99, limit=0, reverse=True)) == []

    def test_limit_early_exit_matches_prefix(self, baseline_engine):
        for k in range(500):
            baseline_engine.put(k, k)
        full = list(baseline_engine.scan(100, 300))
        assert list(baseline_engine.scan(100, 300, limit=25)) == full[:25]
        assert (
            list(baseline_engine.scan(100, 300, limit=25, reverse=True))
            == full[::-1][:25]
        )

    def test_cross_level_tombstones_shadow_older_versions(self, baseline_engine):
        # Bury generation after generation, deleting every third key; the
        # flushes spread versions and tombstones across levels.
        for gen in range(4):
            for k in range(200):
                baseline_engine.put(k, f"g{gen}-{k}")
            for k in range(0, 200, 3):
                baseline_engine.delete(k)
        expected = [
            (k, f"g3-{k}") for k in range(200) if k % 3 != 0
        ]
        assert list(baseline_engine.scan(0, 199)) == expected
        assert list(baseline_engine.scan(0, 199, reverse=True)) == expected[::-1]
        for k in range(0, 200, 3):
            assert baseline_engine.get(k, default="gone") == "gone"


class TestCacheCoherence:
    def test_cached_pages_always_belong_to_live_files(self):
        engine = make_baseline(cache_pages=64)
        tree = engine.tree
        for k in range(3000):
            engine.put(k % 700, f"v{k}")
            if k % 150 == 0:
                engine.get(k % 700)  # keep the cache populated
                list(engine.scan(k % 500, k % 500 + 40))
                # Quiesce background installs (no-op serially): live files
                # and cached pages can only be compared at rest -- between
                # an install's level mutation and its invalidation sweep
                # the raw structure is legitimately mid-change.
                tree.write_barrier()
                live = {
                    f.file_id
                    for level in tree.iter_levels()
                    for run in level.runs
                    for f in run.files
                }
                cached_files = {fid for fid, _ in tree.cache}
                assert cached_files <= live, (
                    f"stale cached pages for dead files: {cached_files - live}"
                )
        assert tree.cache.invalidations > 0  # compactions actually fired

    def test_recovery_gc_invalidates_and_never_reuses_file_ids(self, tmp_path):
        config = baseline_config(cache_pages=32, **TINY)
        with LSMTree.open(config, tmp_path) as tree:
            for k in range(500):
                tree.put(k, f"v{k}")
        # Plant an orphan sstable with a high id, unreferenced by the
        # manifest -- the shape a crash between file write and manifest
        # publish leaves behind.
        store = FileStore(tmp_path)
        tiles, _ = store.read_sstable(store.list_sstable_ids()[0])
        store.write_sstable(997, tiles, {"created_at": 0})
        reopened = LSMTree.open(config, tmp_path)
        assert any("garbage-collected" in line for line in reopened.recovery_log)
        assert 997 not in store.list_sstable_ids()
        # Immutable file ids: the allocator must skip past the GC'd id so
        # no future file can alias a (file_id, page) cache key.
        for k in range(500, 1200):
            reopened.put(k, f"v{k}")
        live_ids = {
            f.file_id
            for level in reopened.iter_levels()
            for run in level.runs
            for f in run.files
        }
        assert 997 not in live_ids
        assert max(live_ids) > 997  # new files allocate past the orphan
        reopened.check_invariants()


@pytest.mark.usefixtures("serial_write_path")  # asserts schedule-exact counters
class TestReadCounters:
    def test_pruning_counters_account_for_every_run_visit(self):
        engine = make_baseline(cache_pages=32)
        for k in range(2000):
            engine.put(k, k)
        for k in range(0, 4000, 7):  # half the probes miss entirely
            engine.get(k)
        report = engine.tree.read_stats()
        levels = report["levels"]
        probes = sum(r["lookup_probes"] for r in levels)
        skips = sum(
            r["lookup_skips_range"] + r["lookup_skips_bloom"] for r in levels
        )
        serves = sum(r["lookup_serves"] for r in levels)
        assert probes > 0 and skips > 0
        assert serves <= probes
        assert all(r["lookup_cache_direct"] <= r["lookup_probes"] for r in levels)

    def test_cache_direct_counts_on_repeat_lookups(self):
        engine = make_baseline(cache_pages=64)
        for k in range(1000):
            engine.put(k, k)
        engine.flush()
        for _ in range(3):
            for k in range(0, 1000, 50):
                assert engine.get(k) == k
        levels = engine.tree.read_stats()["levels"]
        assert sum(r["lookup_cache_direct"] for r in levels) > 0

    def test_read_stats_mirrors_cache_counters(self):
        engine = make_baseline(cache_pages=16)
        for k in range(500):
            engine.put(k, k)
        for k in range(0, 500, 10):
            engine.get(k)
        engine.tree.read_stats()
        counters = engine.tree.counters
        cache = engine.tree.cache
        assert counters["cache_hits"] == cache.hits
        assert counters["cache_misses"] == cache.misses
        assert counters["cache_evictions"] == cache.evictions

    def test_scan_prunes_disjoint_runs(self):
        engine = make_baseline(cache_pages=16)
        for k in range(2000):
            engine.put(k, k)
        # A narrow scan at the top of the keyspace cannot overlap runs
        # holding only older, lower flushed ranges forever; after enough
        # scans the pruned counter must move.
        for _ in range(20):
            list(engine.scan(1990, 1999))
        assert (
            sum(r["scan_runs_pruned"] for r in engine.tree.read_stats()["levels"])
            > 0
        )


class TestObservabilitySurfaces:
    def test_inspector_tables_render(self):
        engine = make_baseline(cache_pages=16)
        for k in range(800):
            engine.put(k, k)
        for k in range(0, 800, 5):
            engine.get(k)
        list(engine.scan(100, 200))
        inspector = TreeInspector(engine)
        cache_table = inspector.cache_table()
        read_table = inspector.read_path_table()
        assert "hit rate" in cache_table
        assert "cache-direct" in read_table
        dashboard = inspector.dashboard()
        assert "cache" in dashboard

    def test_engine_stats_carry_cache_and_read_path(self):
        engine = make_baseline(cache_pages=16)
        for k in range(300):
            engine.put(k, k)
        engine.get(0)
        stats = engine.stats()
        assert stats.cache["capacity_pages"] == 16
        assert isinstance(stats.read_path, list)
        assert stats.counters["cache_hits"] == engine.tree.cache.hits
