"""The adaptive memory governor: budget ledger, live resizes, arbitration.

Four contracts, mirroring DESIGN.md ("Adaptive memory governor"):

* **conservation** -- however the governor is driven (the hypothesis
  suite throws arbitrary signal sequences at it), the per-shard
  allocations never exceed the fixed global pool and never violate the
  floors;
* **identity when off** -- ``memory_governor=None`` engines expose no
  memory section and a governed engine's *contents* are bit-identical to
  an unarmed one's over the same stream (arbitration moves memory, never
  data);
* **coherence under readers** -- ``BlockCache.resize`` re-shards under
  live lock-free readers without a torn lookup, and a governed sharded
  engine under the background write path recovers exact contents after a
  ``write_barrier`` quiesce;
* **convergence on skew** -- a hot/cold-skewed stream ends with the hot
  shard holding strictly more cache than every cold shard.
"""

from __future__ import annotations

import threading
from random import Random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import baseline_config
from repro.errors import ConfigError
from repro.memory import MemoryBudget, MemoryGovernor, MemoryGovernorConfig
from repro.shard import ShardedEngine
from repro.storage.cache import BlockCache


def make_sharded(shards=4, governor=None, **overrides):
    scale = {
        "memtable_entries": 64,
        "entries_per_page": 8,
        "size_ratio": 3,
        "cache_pages": 8,
    }
    scale.update(overrides)
    return ShardedEngine(
        baseline_config(**scale),
        shards=shards,
        key_space=(0, 4096),
        memory_governor=governor,
    )


# ---------------------------------------------------------------------------
# config + ledger basics
# ---------------------------------------------------------------------------
class TestGovernorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_ops": 0},
            {"min_window_ops": -1},
            {"step_fraction": 0.0},
            {"step_fraction": 1.5},
            {"pool_shift_fraction": -0.1},
            {"min_cache_pages": -1},
            {"min_memtable_entries": 0},
            {"tombstone_discount": 2.0},
            {"write_amplification": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MemoryGovernorConfig(**kwargs)

    def test_defaults_valid(self):
        MemoryGovernorConfig()  # does not raise


class TestMemoryBudget:
    def test_from_config_freezes_the_pool(self):
        config = baseline_config(
            memtable_entries=64, cache_pages=8, entries_per_page=8
        )
        budget = MemoryBudget.from_config(config, 4)
        assert budget.memtable_entries == [64] * 4
        assert budget.cache_pages == [8] * 4
        assert budget.total_units == 4 * (64 + 8 * 8)
        assert budget.remaining_units() == 0
        budget.check()

    def test_overcommit_raises(self):
        budget = MemoryBudget(2, 64, 8, 8)
        budget.memtable_entries[0] = 64 + 8 * 8 + 1  # eat shard 1's pool + 1
        budget.cache_pages[1] = 8
        with pytest.raises(AssertionError, match="overcommitted"):
            budget.set(1, 64, 8)

    def test_set_within_pool_ok(self):
        budget = MemoryBudget(2, 64, 8, 8)
        budget.set(1, 28, 6)  # shrink the donor first...
        budget.set(0, 100, 10)  # ...then grow: 100+28 + (10+6)*8 = 256
        assert budget.used_units() == budget.total_units

    def test_rebind_recomputes_pool_and_shaves(self):
        budget = MemoryBudget(2, 64, 8, 8)
        # A split: three live shards, one grown well past its default.
        budget.rebind([(64, 40), (64, 8), (64, 8)])
        assert budget.shard_count == 3
        assert budget.total_units == 3 * (64 + 8 * 8)
        budget.check()  # the shave brought it back under the pool

    def test_to_dict_round_trip_fields(self):
        budget = MemoryBudget(2, 64, 8, 8)
        d = budget.to_dict()
        assert d["total_units"] == budget.total_units
        assert d["memtable_entries"] == [64, 64]
        assert d["cache_pages"] == [8, 8]


# ---------------------------------------------------------------------------
# conservation: the hypothesis suite
# ---------------------------------------------------------------------------
window_strategy = st.lists(
    st.tuples(
        st.lists(st.integers(0, 2_000), min_size=4, max_size=4),  # writes
        st.lists(st.integers(0, 5_000), min_size=4, max_size=4),  # hit incs
        st.lists(st.integers(0, 5_000), min_size=4, max_size=4),  # miss incs
        st.lists(st.floats(0.0, 1.0), min_size=4, max_size=4),  # tomb density
    ),
    min_size=1,
    max_size=12,
)


class TestConservation:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(windows=window_strategy)
    def test_budget_sum_invariant_over_any_decision_sequence(self, windows):
        governor = MemoryGovernor(
            MemoryGovernorConfig(window_ops=64, min_window_ops=0)
        )
        governor.bind(MemoryBudget(4, 64, 8, 8))
        budget = governor.budget
        floor_entries = min(governor.config.min_memtable_entries, 64)
        hits = [0] * 4
        misses = [0] * 4
        for writes, hit_incs, miss_incs, tombs in windows:
            for i, count in enumerate(writes):
                if count:
                    governor.note_writes(i, count)
            for i in range(4):
                hits[i] += hit_incs[i]
                misses[i] += miss_incs[i]
            signals = {
                i: {
                    "hits": hits[i],
                    "misses": misses[i],
                    "memtable_fill": 0.5,
                    "tombstone_density": tombs[i],
                }
                for i in range(4)
            }
            decisions = governor.evaluate(signals)
            budget.check()  # the invariant under test
            assert budget.used_units() <= budget.total_units
            assert all(e >= max(1, floor_entries) for e in budget.memtable_entries)
            assert all(p >= 0 for p in budget.cache_pages)
            for decision in decisions:
                assert decision["memtable_entries"] >= 1
                assert decision["cache_pages"] >= 0

    def test_skipped_window_makes_no_decision(self):
        governor = MemoryGovernor(
            MemoryGovernorConfig(window_ops=64, min_window_ops=64)
        )
        governor.bind(MemoryBudget(2, 64, 8, 8))
        governor.note_writes(0, 10)  # a trickle, below min_window_ops
        assert governor.evaluate({}) == []
        assert governor.budget.memtable_entries == [64, 64]


# ---------------------------------------------------------------------------
# BlockCache.resize
# ---------------------------------------------------------------------------
class TestCacheResize:
    def test_resize_recomputes_shard_layout(self):
        cache = BlockCache(16)
        assert cache.shard_count == 1
        cache.resize(600)  # crosses _SHARD_THRESHOLD
        assert cache.shard_count == 8
        assert sum(s.capacity for s in cache._shards) == 600
        cache.resize(8)
        assert cache.shard_count == 1
        assert sum(s.capacity for s in cache._shards) == 8
        assert cache.resizes == 2

    def test_grow_preserves_contents(self):
        cache = BlockCache(16)
        for i in range(16):
            cache.put("f", i, f"p{i}")
        dropped = cache.resize(600)
        assert dropped == 0
        for i in range(16):
            assert cache.get("f", i) == f"p{i}"

    def test_shrink_evicts_down_to_capacity(self):
        cache = BlockCache(600)
        for i in range(600):
            cache.put("f", i, f"p{i}")
        cache.resize(4)
        assert len(cache) <= 4
        survivors = sum(1 for i in range(600) if ("f", i) in cache)
        assert survivors == len(cache)

    def test_resize_to_zero_disables_then_reenables(self):
        cache = BlockCache(8)
        cache.put("f", 0, "a")
        cache.resize(0)
        assert len(cache) == 0
        cache.put("f", 1, "b")
        assert len(cache) == 0  # capacity-0 cache admits nothing
        cache.resize(8)
        cache.put("f", 2, "c")
        assert cache.get("f", 2) == "c"

    def test_resize_drops_retired_files(self):
        cache = BlockCache(16)
        cache.put("f1", 0, "a")
        cache.put("f2", 0, "b")
        cache.invalidate_file("f1")
        cache.put("f1", 1, "late")  # rejected: f1 is retired
        cache.resize(600)
        assert ("f1", 0) not in cache
        assert ("f1", 1) not in cache
        assert cache.get("f2", 0) == "b"

    def test_resize_same_capacity_is_a_no_op(self):
        cache = BlockCache(16)
        cache.put("f", 0, "a")
        assert cache.resize(16) == 0
        assert cache.resizes == 0
        assert cache.get("f", 0) == "a"

    def test_negative_resize_rejected(self):
        with pytest.raises(ValueError):
            BlockCache(8).resize(-1)

    def test_stats_counters_monotonic_across_resize(self):
        cache = BlockCache(16)
        for i in range(20):
            cache.put("f", i, i)
        cache.get("f", 19)
        cache.get("f", 999)  # miss
        hits, misses = cache.hits, cache.misses
        evictions = cache.stats()["evictions"]
        cache.resize(700)
        assert cache.hits == hits
        assert cache.misses == misses
        assert cache.stats()["evictions"] >= evictions

    def test_resize_under_concurrent_readers(self):
        # The published (_shards, _mask) pair swaps while reader threads
        # run the lock-free route: no torn lookup may raise or return a
        # foreign page.
        cache = BlockCache(64)
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn(tid: int) -> None:
            rng = Random(tid)
            try:
                while not stop.is_set():
                    file_id = rng.randrange(4)
                    page = rng.randrange(256)
                    if rng.random() < 0.5:
                        cache.put(file_id, page, (file_id, page))
                    else:
                        got = cache.get(file_id, page)
                        assert got is None or got == (file_id, page)
            except BaseException as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        try:
            rng = Random(99)
            for _ in range(120):
                cache.resize(rng.choice([4, 32, 128, 600, 1024]))
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors, errors[0]
        assert cache.resizes > 0  # same-capacity draws are no-ops


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------
def skewed_stream(n, seed=7):
    """80% of traffic to the first quarter of the key space (shard 0)."""
    rng = Random(seed)
    ops = []
    for i in range(n):
        if rng.random() < 0.8:
            key = rng.randrange(1024)
        else:
            key = 1024 + rng.randrange(3072)
        ops.append((key, f"v{i}"))
    return ops


class TestGovernedEngine:
    def test_governor_off_by_default_and_stats_empty(self):
        engine = make_sharded()
        try:
            engine.put(1, "a")
            stats = engine.stats()
            assert stats.memory is None
            assert stats.to_dict()["memory"] == {}
        finally:
            engine.close()

    def test_requires_writable_engine(self, tmp_path):
        engine = make_sharded()
        engine.close()
        root = str(tmp_path / "store")
        engine = ShardedEngine(
            baseline_config(memtable_entries=64, entries_per_page=8),
            directory=root,
            shards=2,
            key_space=(0, 4096),
        )
        engine.put(1, "a")
        engine.close()
        with pytest.raises(ConfigError):
            ShardedEngine(
                None,
                directory=root,
                read_only=True,
                memory_governor=True,
            )

    def test_governed_contents_identical_to_static(self):
        ops = skewed_stream(4_000)
        reads = [op[0] for op in skewed_stream(1_000, seed=13)]
        digests = {}
        for arm, governor in (
            ("static", None),
            ("adaptive", MemoryGovernorConfig(window_ops=256)),
        ):
            engine = make_sharded(governor=governor)
            try:
                for key, value in ops:
                    engine.put(key, value)
                for key in reads:
                    engine.get(key)
                engine.write_barrier()
                digests[arm] = list(engine.scan(0, 4096))
                engine.verify_invariants()
            finally:
                engine.close()
        assert digests["adaptive"] == digests["static"]

    def test_hot_shard_converges_to_more_cache(self):
        governor = MemoryGovernorConfig(window_ops=256, min_cache_pages=1)
        engine = make_sharded(governor=governor)
        try:
            rng = Random(5)
            # 16 pages of hot working set at this scale (epp=8): big enough
            # that one shard's static 8 pages thrash, small enough that the
            # governed pool can actually cover it -- the governor only
            # grows a cache whose demonstrated hit rate proves the stream
            # is cacheable.  The hot keys are written once and flushed so
            # reads on them hit *pages*, not the memtable: a memtable-
            # resident working set gives the cache nothing to convert and
            # the governor (correctly) routes the budget to the buffers.
            hot_keys = list(range(0, 128))
            for key in hot_keys:
                engine.put(key, f"h{key}")
            engine.flush()
            for i in range(6_000):
                engine.put(1024 + rng.randrange(3072), f"v{i}")
                engine.get(hot_keys[rng.randrange(len(hot_keys))])
            engine.write_barrier()
            stats = engine.stats()
            assert stats.memory is not None
            assert stats.memory["windows_evaluated"] > 0
            assert stats.memory["decisions"] > 0
            hot = engine.shards[0].tree.cache.capacity
            cold = [s.tree.cache.capacity for s in engine.shards[1:]]
            assert all(hot > c for c in cold), (hot, cold)
            # The live seams track the ledger exactly.
            budget = stats.memory["budget"]
            assert budget["cache_pages"] == [
                s.tree.cache.capacity for s in engine.shards
            ]
            assert budget["memtable_entries"] == [
                s.tree.memtable_budget for s in engine.shards
            ]
            assert budget["used_units"] <= budget["total_units"]
        finally:
            engine.close()

    def test_governed_engine_under_background_workers(self, monkeypatch):
        # REPRO_WORKERS=4 engines apply decisions on the router thread
        # while worker threads flush and compact; a write_barrier quiesce
        # must still recover exact contents.
        monkeypatch.setenv("REPRO_WORKERS", "4")
        governor = MemoryGovernorConfig(window_ops=128)
        engine = make_sharded(governor=governor)
        try:
            rng = Random(3)
            model = {}
            for i in range(4_000):
                key = rng.randrange(1024) if rng.random() < 0.8 else rng.randrange(4096)
                if rng.random() < 0.1:
                    engine.delete(key)
                    model.pop(key, None)
                else:
                    engine.put(key, f"v{i}")
                    model[key] = f"v{i}"
                if i % 3 == 0:
                    engine.get(rng.randrange(1024))
            engine.write_barrier()
            assert dict(engine.scan(0, 4096)) == model
            engine.verify_invariants()
        finally:
            engine.close()

    def test_budgets_reset_to_config_defaults_on_reopen(self, tmp_path):
        root = str(tmp_path / "store")
        config = baseline_config(
            memtable_entries=64, entries_per_page=8, cache_pages=8
        )
        governor = MemoryGovernorConfig(window_ops=128)
        engine = ShardedEngine(
            config,
            directory=root,
            shards=4,
            key_space=(0, 4096),
            memory_governor=governor,
        )
        for key, value in skewed_stream(2_000):
            engine.put(key, value)
            engine.get(key)
        assert engine.stats().memory["windows_evaluated"] > 0
        engine.close()
        reopened = ShardedEngine(None, directory=root)
        try:
            for shard in reopened.shards:
                assert shard.tree.memtable_budget == 64
                assert shard.tree.cache.capacity == 8
            assert reopened.stats().memory is None  # governor is per-open
        finally:
            reopened.close()

    def test_set_memtable_budget_validates(self):
        engine = make_sharded(shards=2)
        try:
            with pytest.raises(ValueError):
                engine.shards[0].tree.set_memtable_budget(0)
        finally:
            engine.close()
