"""Cache-coherence and batched-ingest equivalence properties.

The hot-path overhaul replaced recomputed statistics with incrementally
maintained counters (``Run``/``Level`` entry, tombstone, and page counts;
the tree's deepest-non-empty-level cache) and added a batched ingest path
(``put_many`` / ``apply_batch``).  These tests pin down the two contracts
the optimizations rest on:

* **coherence** -- after any operation sequence the cached counters equal a
  fresh recomputation from the immutable files;
* **equivalence** -- a batch leaves the engine in exactly the state the
  same operations applied one at a time would have (tree shape, counters,
  simulated I/O, compaction log).
"""

from __future__ import annotations

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import make_acheron, make_baseline
from repro.config import CompactionStyle

# (op_code, key): 0 = put, 1 = delete
op_strategy = st.tuples(st.integers(0, 1), st.integers(0, 150))

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _apply(engine, ops):
    for code, key in ops:
        if code == 0:
            engine.put(key, f"v{key}")
        else:
            engine.delete(key)


def _assert_cache_coherent(tree) -> None:
    """Cached counters must equal recomputation at every granularity."""
    for level in tree._levels:
        entries, tombstones, pages = level.recompute_counts()
        assert level.entry_count == entries
        assert level.tombstone_count == tombstones
        assert level.page_count == pages
        for run in level.runs:
            assert run.entry_count == sum(f.entry_count for f in run.files)
            assert run.tombstone_count == sum(
                f.tombstone_count for f in run.files
            )
            assert run.page_count == sum(f.page_count for f in run.files)
    fresh_deepest = max(
        (level.index for level in tree._levels if level.runs), default=0
    )
    assert tree.deepest_nonempty_level() == fresh_deepest


def _state(engine) -> dict:
    """Everything observable that per-op and batched ingest must agree on."""
    stats = engine.stats()
    tree = engine.tree
    return {
        "counters": stats.counters,
        "flush_count": stats.flush_count,
        "compaction_count": stats.compaction_count,
        "pages_written": stats.io.pages_written,
        "pages_read": stats.io.pages_read,
        "tick": stats.tick,
        "seqno": tree._seqno,
        "memtable": [
            (e.key, e.seqno, e.kind, e.value) for e in tree.memtable
        ],
        "levels": [
            (
                level.index,
                [[f.file_id for f in run.files] for run in level.runs],
                level.entry_count,
                level.tombstone_count,
                level.page_count,
            )
            for level in tree._levels
        ],
        "compaction_log": [
            (ev.reason, ev.source_level, ev.target_level, ev.entries_out)
            for ev in tree.compaction_log
        ],
    }


class TestCacheCoherence:
    @given(st.lists(op_strategy, max_size=400))
    @SETTINGS
    def test_baseline_leveling(self, ops):
        engine = make_baseline()
        _apply(engine, ops)
        _assert_cache_coherent(engine.tree)
        engine.tree.check_invariants()

    @given(st.lists(op_strategy, max_size=400))
    @SETTINGS
    def test_baseline_tiering(self, ops):
        engine = make_baseline(policy=CompactionStyle.TIERING)
        _apply(engine, ops)
        _assert_cache_coherent(engine.tree)
        engine.tree.check_invariants()

    @given(st.lists(op_strategy, max_size=400))
    @SETTINGS
    def test_acheron(self, ops):
        engine = make_acheron()
        _apply(engine, ops)
        _assert_cache_coherent(engine.tree)
        engine.tree.check_invariants()

    def test_coherent_after_full_compaction(self):
        engine = make_baseline()
        for k in range(500):
            engine.put(k, k)
        for k in range(0, 500, 3):
            engine.delete(k)
        engine.tree.full_compaction()
        _assert_cache_coherent(engine.tree)
        engine.tree.check_invariants()


class TestBatchEquivalence:
    """apply_batch/put_many must be indistinguishable from per-op ingest."""

    @given(st.lists(op_strategy, max_size=400), st.integers(1, 64))
    @SETTINGS
    def test_apply_batch_matches_per_op(self, ops, batch):
        per_op = make_acheron()
        _apply(per_op, ops)

        batched = make_acheron()
        batch_ops = [
            ("put", key, f"v{key}") if code == 0 else ("delete", key)
            for code, key in ops
        ]
        for start in range(0, len(batch_ops), batch):
            batched.apply_batch(batch_ops[start : start + batch])

        assert _state(batched) == _state(per_op)
        _assert_cache_coherent(batched.tree)
        batched.tree.check_invariants()

    @given(st.lists(st.integers(0, 150), max_size=300), st.integers(1, 64))
    @SETTINGS
    def test_put_many_matches_puts(self, keys, batch):
        per_op = make_baseline()
        for key in keys:
            per_op.put(key, f"v{key}")

        batched = make_baseline()
        items = [(key, f"v{key}") for key in keys]
        for start in range(0, len(items), batch):
            assert batched.put_many(items[start : start + batch]) == len(
                items[start : start + batch]
            )

        assert _state(batched) == _state(per_op)
        _assert_cache_coherent(batched.tree)

    def test_batch_rejects_unknown_op(self):
        engine = make_baseline()
        try:
            engine.apply_batch([("frob", 1)])
        except ValueError:
            pass
        else:
            raise AssertionError("unknown op kind must raise ValueError")


@pytest.mark.usefixtures("serial_write_path")  # compares schedule-exact I/O state between arms
class TestSeedCostModelEquivalence:
    """The benchmark's pre-change replica must match the optimized engine
    observable-for-observable (this is what makes the reported speedup a
    like-for-like comparison)."""

    def test_seed_arm_state_matches_optimized_arm(self):
        from repro.bench.seedcost import seed_cost_model

        ops = [
            ("put", k % 90, f"v{k}") if k % 5 else ("delete", (k * 7) % 90)
            for k in range(1200)
        ]
        seed_engine = make_acheron()
        with seed_cost_model(seed_engine.tree):
            for op in ops:
                if op[0] == "put":
                    seed_engine.put(op[1], op[2])
                else:
                    seed_engine.delete(op[1])

        optimized = make_acheron()
        for start in range(0, len(ops), 128):
            optimized.apply_batch(ops[start : start + 128])

        assert _state(optimized) == _state(seed_engine)
        _assert_cache_coherent(optimized.tree)
        optimized.tree.check_invariants()
