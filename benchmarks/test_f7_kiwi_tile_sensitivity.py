"""F7 -- KiWi tile-size sensitivity: what ``h`` buys and what it costs.

The weave's tuning knob: with ``h`` pages per delete tile, a secondary
range delete can drop up to ``(h-2)/h`` of the covered pages for free, but
a point lookup inside a tile must probe up to ``h`` candidate pages and a
range scan must fetch all ``h``.  One dataset, ``h`` swept, all three
costs measured -- the figure behind the demo's "choose your layout" panel.
"""

from repro.bench import ExperimentResult, make_acheron, record_experiment

ENTRIES = 24_000
POINT_LOOKUPS = 2_000
RANGE_QUERIES = 300
RANGE_SPAN = 200
H_SWEEP = [1, 2, 4, 8, 16]


def _load(engine):
    for i in range(ENTRIES):
        engine.put((i * 48_271) % ENTRIES, f"v{i}")
    engine.flush()


def _point_cost(engine):
    import numpy as np

    rng = np.random.default_rng(0xF7)
    stats = engine.disk.stats
    before = stats.pages_read
    for _ in range(POINT_LOOKUPS):
        engine.get(int(rng.integers(0, ENTRIES)))
    return (stats.pages_read - before) / POINT_LOOKUPS


def _range_cost(engine):
    import numpy as np

    rng = np.random.default_rng(0xF7 + 1)
    stats = engine.disk.stats
    before = stats.pages_read
    for _ in range(RANGE_QUERIES):
        lo = int(rng.integers(0, ENTRIES - RANGE_SPAN))
        for _ in engine.scan(lo, lo + RANGE_SPAN):
            pass
    return (stats.pages_read - before) / RANGE_QUERIES


def test_f7_kiwi_tile_sensitivity(benchmark, shape_check):
    rows = []
    series = {}
    mitigated = {}

    def run():
        for h in H_SWEEP:
            engine = make_acheron(10**6, pages_per_tile=h)
            _load(engine)
            point = _point_cost(engine)
            rng_cost = _range_cost(engine)
            cutoff = engine.clock.now() // 3
            report = engine.delete_range(0, cutoff, method="kiwi")
            series[h] = (point, rng_cost, report.io.total_pages, report.pages_dropped)
            rows.append(
                [
                    f"h={h}",
                    round(point, 3),
                    round(rng_cost, 2),
                    report.pages_dropped,
                    report.pages_rewritten,
                    report.io.total_pages,
                    round(report.io.modeled_us / 1000.0, 2),
                ]
            )
            engine.close()
        # The paper's mitigation: per-page filters prune candidate pages.
        for h in (8, 16):
            engine = make_acheron(10**6, pages_per_tile=h, kiwi_page_filters=True)
            _load(engine)
            point = _point_cost(engine)
            mitigated[h] = point
            rows.append([f"h={h} +page-filters", round(point, 3), None, None, None, None, None])
            engine.close()

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        ExperimentResult(
            exp_id="F7",
            title="KiWi pages-per-tile (h) sweep: read penalty vs delete benefit",
            headers=[
                "h",
                "pages/point lookup",
                "pages/range query",
                "delete: dropped free",
                "delete: rewritten",
                "delete: total I/O pages",
                "delete: modeled ms",
            ],
            rows=rows,
            notes=(
                "Claim shape: secondary-delete I/O falls monotonically with h "
                "while point/range read costs rise -- the tradeoff the paper's "
                "tuning discussion navigates."
            ),
        ),
        benchmark,
    )

    shape_check(
        series[16][2] < series[1][2],
        "delete I/O at h=16 should be far below h=1",
    )
    shape_check(
        series[16][0] >= series[1][0],
        "point-lookup cost should not fall as h grows",
    )
    shape_check(
        series[16][1] >= series[1][1],
        "range-query cost should not fall as h grows",
    )
    shape_check(series[16][3] > series[1][3], "free page drops should grow with h")
    for h in (8, 16):
        shape_check(
            mitigated[h] < series[h][0],
            f"per-page filters should cut h={h} point-read cost "
            f"({mitigated[h]:.2f} vs {series[h][0]:.2f})",
        )
