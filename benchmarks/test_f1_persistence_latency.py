"""F1 -- Delete persistence latency: baseline vs FADE across D_th.

The paper's headline figure: the baseline gives *no bound* on how long a
deleted entry survives (its tail is limited only by how long the workload
runs), while FADE keeps every delete within the configured ``D_th``.

Regenerates: one row per engine configuration with the latency
distribution of persisted deletes and the age of the oldest still-pending
delete (the compliance exposure).
"""

from repro.bench import ExperimentResult, make_acheron, make_baseline, record_experiment
from repro.workload.spec import OpKind, WorkloadSpec


def _spec() -> WorkloadSpec:
    return WorkloadSpec(
        operations=20_000,
        preload=10_000,
        weights={
            OpKind.INSERT: 0.45,
            OpKind.UPDATE: 0.15,
            OpKind.POINT_DELETE: 0.25,
            OpKind.POINT_QUERY: 0.15,
        },
        seed=0xF1,
    )


def test_f1_persistence_latency(benchmark, shape_check):
    spec = _spec()
    configs = [
        ("baseline", None, make_baseline),
        ("fade D_th=5k", 5_000, lambda: make_acheron(5_000, pages_per_tile=1)),
        ("fade D_th=15k", 15_000, lambda: make_acheron(15_000, pages_per_tile=1)),
    ]
    rows = []
    worst: dict[str, int] = {}

    def run():
        from repro.bench import run_mixed_workload

        for name, d_th, factory in configs:
            engine = factory()
            _, stats = run_mixed_workload(engine, spec)
            p = stats.persistence
            bound = max(p.max_latency or 0, p.oldest_pending_age or 0)
            worst[name] = bound
            rows.append(
                [
                    name,
                    d_th,
                    p.registered,
                    p.persisted,
                    p.pending,
                    p.p50_latency,
                    p.p99_latency,
                    p.max_latency,
                    p.oldest_pending_age,
                    p.violations,
                    "yes" if p.compliant() and d_th else ("n/a" if not d_th else "NO"),
                ]
            )
            engine.close()

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        ExperimentResult(
            exp_id="F1",
            title="Delete persistence latency (ticks), baseline vs FADE",
            headers=[
                "engine",
                "D_th",
                "registered",
                "persisted",
                "pending",
                "p50",
                "p99",
                "max",
                "oldest pending",
                "violations",
                "compliant",
            ],
            rows=rows,
            notes=(
                "Claim shape: FADE's worst case (max latency and oldest pending "
                "age) stays <= D_th; the baseline's exposure is unbounded."
            ),
        ),
        benchmark,
    )

    shape_check(worst["fade D_th=5k"] <= 5_000, "FADE D_th=5k exceeded its bound")
    shape_check(worst["fade D_th=15k"] <= 15_000, "FADE D_th=15k exceeded its bound")
    shape_check(
        worst["baseline"] > 15_000,
        f"baseline exposure ({worst['baseline']}) should exceed the largest D_th",
    )
