"""F8 -- Tombstone pile-up: what un-persisted deletes do to reads.

A delete is not free for readers: until purged, a tombstone occupies pages
that empty lookups and short scans must still fetch and filter.  This
figure deletes a contiguous key region, then repeatedly queries *inside
the deleted region* -- the queries all return nothing, but the baseline
pays real device reads for that nothing, growing with the delete fraction,
while FADE's purged tree answers (almost) for free.
"""

from repro.bench import ExperimentResult, make_acheron, make_baseline, record_experiment

TOTAL_KEYS = 12_000
PROBES = 600
SCAN_SPAN = 100
DELETE_FRACTIONS = [0.1, 0.3, 0.5]


def _build(engine, fraction):
    for k in range(TOTAL_KEYS):
        engine.put(k, f"v{k}")
    doomed = int(TOTAL_KEYS * fraction)
    start = (TOTAL_KEYS - doomed) // 2
    for k in range(start, start + doomed):
        engine.delete(k)
    engine.advance_time(4_000)  # give FADE room to purge
    return start, start + doomed - 1


def _deleted_region_cost(engine, lo, hi):
    import numpy as np

    rng = np.random.default_rng(0xF8)
    stats = engine.disk.stats
    before_point = stats.pages_read
    for _ in range(PROBES):
        key = int(rng.integers(lo, hi + 1))
        assert engine.get(key) is None
    point_pages = stats.pages_read - before_point
    before_scan = stats.pages_read
    for _ in range(PROBES // 10):
        s = int(rng.integers(lo, max(lo + 1, hi - SCAN_SPAN)))
        assert list(engine.scan(s, s + SCAN_SPAN)) == []
    scan_pages = stats.pages_read - before_scan
    return point_pages / PROBES, scan_pages / (PROBES // 10)


def test_f8_tombstone_pileup(benchmark, shape_check):
    rows = []
    series = []

    def run():
        for fraction in DELETE_FRACTIONS:
            base = make_baseline()
            ach = make_acheron(3_000, pages_per_tile=1)
            base_span = _build(base, fraction)
            ach_span = _build(ach, fraction)
            base_point, base_scan = _deleted_region_cost(base, *base_span)
            ach_point, ach_scan = _deleted_region_cost(ach, *ach_span)
            series.append((fraction, base_scan, ach_scan))
            rows.append(
                [
                    f"{fraction:.0%}",
                    base.tree.tombstone_count_on_disk,
                    ach.tree.tombstone_count_on_disk,
                    round(base_point, 3),
                    round(ach_point, 3),
                    round(base_scan, 2),
                    round(ach_scan, 2),
                ]
            )
            base.close()
            ach.close()

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        ExperimentResult(
            exp_id="F8",
            title="Cost of querying a mass-deleted region (returns nothing)",
            headers=[
                "region deleted",
                "baseline tombstones",
                "acheron tombstones",
                "base pages/empty get",
                "ach pages/empty get",
                "base pages/empty scan",
                "ach pages/empty scan",
            ],
            rows=rows,
            notes=(
                "Claim shape: the baseline pays device reads proportional to "
                "its tombstone pile for queries that return nothing; the "
                "purged tree pays (near) zero, at every delete fraction."
            ),
        ),
        benchmark,
    )

    for fraction, base_scan, ach_scan in series:
        shape_check(
            ach_scan <= base_scan,
            f"at {fraction:.0%}: acheron empty-scan cost {ach_scan:.2f} > baseline {base_scan:.2f}",
        )
    shape_check(
        series[-1][1] > series[-1][2] * 2,
        "at 50% deletes the baseline's empty-scan cost should dwarf acheron's",
    )
