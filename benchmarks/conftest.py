"""Benchmark-suite configuration.

Each module in this directory regenerates one table/figure of the
reconstructed evaluation (see DESIGN.md).  Every test prints its table,
archives it under ``benchmarks/results/``, and asserts the *shape* of the
paper's claim (who wins, roughly by how much) -- not absolute numbers,
which depend on the simulated device model.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


@pytest.fixture(autouse=True)
def serial_write_path(monkeypatch):
    """Benchmarks always run the serial (inline) write path.

    The archived tables under ``results/`` are bit-for-bit reproducible
    only with deterministic scheduling; a ``REPRO_WORKERS`` value leaking
    in from the environment (e.g. the concurrent CI job) must not change
    them.
    """
    monkeypatch.setenv("REPRO_WORKERS", "1")


@pytest.fixture
def shape_check():
    """Collect shape assertions and report them together.

    Benchmarks assert claim *shapes*; collecting failures (rather than
    stopping at the first) makes a mismatch report read like an
    experiment log.
    """
    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    yield check
    assert not failures, "shape mismatches:\n- " + "\n- ".join(failures)
