"""Benchmark-suite configuration.

Each module in this directory regenerates one table/figure of the
reconstructed evaluation (see DESIGN.md).  Every test prints its table,
archives it under ``benchmarks/results/``, and asserts the *shape* of the
paper's claim (who wins, roughly by how much) -- not absolute numbers,
which depend on the simulated device model.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


@pytest.fixture
def shape_check():
    """Collect shape assertions and report them together.

    Benchmarks assert claim *shapes*; collecting failures (rather than
    stopping at the first) makes a mismatch report read like an
    experiment log.
    """
    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    yield check
    assert not failures, "shape mismatches:\n- " + "\n- ".join(failures)
