"""T2 -- Memory sensitivity: Bloom bits and cache size vs lookup cost.

Filters and cache are where tombstones interact with read-path memory: a
tombstone-bloated tree has more files (more filters to probe, more false
positives at a fixed bits/key) and a bigger working set (worse cache hit
rates).  The table sweeps Bloom bits/key and block-cache capacity on the
post-delete tree for both engines.
"""

from repro.bench import (
    ExperimentResult,
    make_acheron,
    make_baseline,
    record_experiment,
    run_mixed_workload,
)
from repro.workload.spec import OpKind, WorkloadSpec

BLOOM_SWEEP = [0.0, 2.0, 5.0, 10.0]
CACHE_SWEEP = [0, 128, 512]
PROBES = 2_500


def _history() -> WorkloadSpec:
    return WorkloadSpec(
        operations=16_000,
        preload=8_000,
        weights={
            OpKind.INSERT: 0.50,
            OpKind.UPDATE: 0.15,
            OpKind.POINT_DELETE: 0.25,
            OpKind.POINT_QUERY: 0.10,
        },
        seed=0x72,
    )


def _probe_cost(engine):
    """Mixed existing/missing point probes; returns pages per lookup."""
    import numpy as np

    rng = np.random.default_rng(0x72)
    stats = engine.disk.stats
    before = stats.pages_read
    hi = engine.clock.now()
    for i in range(PROBES):
        key = int(rng.integers(0, hi))
        key = key - key % 4 if i % 2 == 0 else key | 1  # half on-stride, half missing
        engine.get(key)
    return (stats.pages_read - before) / PROBES


def test_t2_memory_sensitivity(benchmark, shape_check):
    rows = []
    at_zero_bits = {}
    at_ten_bits = {}

    def run():
        spec = _history()
        for bits in BLOOM_SWEEP:
            for name, factory in [
                ("baseline", lambda b=bits: make_baseline(bloom_bits_per_key=b)),
                (
                    "acheron",
                    lambda b=bits: make_acheron(6_000, pages_per_tile=1, bloom_bits_per_key=b),
                ),
            ]:
                engine = factory()
                run_mixed_workload(engine, spec)
                cost = _probe_cost(engine)
                filters_bytes = sum(
                    f.bloom.size_bytes
                    for lvl in engine.tree.iter_levels()
                    for f in lvl.iter_files()
                )
                if bits == 0.0:
                    at_zero_bits[name] = cost
                if bits == 10.0:
                    at_ten_bits[name] = cost
                rows.append(
                    [f"bloom={bits:g}b/key cache=0", name, filters_bytes, round(cost, 3)]
                )
                engine.close()
        for alloc in ("uniform", "monkey"):
            engine = make_baseline(bloom_allocation=alloc, trivial_moves=False)
            run_mixed_workload(engine, spec)
            cost = _probe_cost(engine)
            filters_bytes = sum(
                f.bloom.size_bytes
                for lvl in engine.tree.iter_levels()
                for f in lvl.iter_files()
            )
            rows.append(
                [f"bloom=10b/key alloc={alloc}", "baseline", filters_bytes, round(cost, 3)]
            )
            engine.close()
        for cache in CACHE_SWEEP[1:]:
            for name, factory in [
                ("baseline", lambda c=cache: make_baseline(cache_pages=c)),
                (
                    "acheron",
                    lambda c=cache: make_acheron(6_000, pages_per_tile=1, cache_pages=c),
                ),
            ]:
                engine = factory()
                run_mixed_workload(engine, spec)
                cost = _probe_cost(engine)
                rows.append(
                    [
                        f"bloom=10b/key cache={cache}p",
                        name,
                        f"hit-rate {engine.tree.cache.hit_rate:.0%}",
                        round(cost, 3),
                    ]
                )
                engine.close()

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        ExperimentResult(
            exp_id="T2",
            title=f"Lookup cost vs filter/cache memory ({PROBES} mixed probes)",
            headers=["memory configuration", "engine", "filter bytes / cache", "pages/lookup"],
            rows=rows,
            notes=(
                "Claim shape: lookup cost falls with Bloom bits for both "
                "engines, and at every memory budget the purged (FADE) tree "
                "is at least as cheap to probe as the tombstone-laden one."
            ),
        ),
        benchmark,
    )

    for name in ("baseline", "acheron"):
        shape_check(
            at_ten_bits[name] < at_zero_bits[name],
            f"{name}: 10 bits/key should beat no filter",
        )
    shape_check(
        at_ten_bits["acheron"] <= at_zero_bits["baseline"],
        "filtered acheron should beat unfiltered baseline",
    )
    monkey_rows = {r[0]: r for r in rows if "alloc=" in str(r[0])}
    uniform_bytes = monkey_rows["bloom=10b/key alloc=uniform"][2]
    monkey_bytes = monkey_rows["bloom=10b/key alloc=monkey"][2]
    shape_check(
        monkey_bytes < uniform_bytes,
        "Monkey allocation should use less filter memory than uniform",
    )
