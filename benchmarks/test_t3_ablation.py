"""T3 -- Ablation: each delete-aware design element earns its keep.

Acheron = TTL expiry triggers + delete-aware file picking + bottom purging
+ the KiWi weave.  The table removes one element at a time and measures
what degrades:

* no TTL triggers (picker only)  -> persistence becomes unbounded;
* no delete-aware picking        -> tombstones drain slower (higher
  pending count / residue) at similar write cost;
* no bottom-drop (and no FADE)   -> tombstones are never purged at all;
* no weave (h=1)                 -> secondary deletes lose the free drops.
"""

from repro.bench import (
    ExperimentResult,
    make_acheron,
    make_baseline,
    record_experiment,
    run_mixed_workload,
)
from repro.config import FilePickPolicy
from repro.workload.spec import OpKind, WorkloadSpec

D_TH = 6_000


def _spec() -> WorkloadSpec:
    return WorkloadSpec(
        operations=16_000,
        preload=8_000,
        weights={
            OpKind.INSERT: 0.50,
            OpKind.UPDATE: 0.15,
            OpKind.POINT_DELETE: 0.20,
            OpKind.POINT_QUERY: 0.15,
        },
        seed=0x73,
    )


VARIANTS = [
    ("full acheron", lambda: make_acheron(D_TH, pages_per_tile=8)),
    (
        "- ttl triggers",
        lambda: make_baseline(
            file_pick=FilePickPolicy.TOMBSTONE_DENSITY, pages_per_tile=8
        ),
    ),
    (
        "- delete-aware picking",
        lambda: make_acheron(D_TH, pages_per_tile=8, file_pick=FilePickPolicy.MIN_OVERLAP),
    ),
    (
        "- bottom tombstone drop",
        lambda: make_baseline(drop_tombstones_at_bottom=False, pages_per_tile=8),
    ),
    ("- kiwi weave (h=1)", lambda: make_acheron(D_TH, pages_per_tile=1)),
    ("plain baseline", lambda: make_baseline()),
]


def test_t3_ablation(benchmark, shape_check):
    rows = []
    metrics = {}

    def run():
        spec = _spec()
        for name, factory in VARIANTS:
            engine = factory()
            _, stats = run_mixed_workload(engine, spec)
            p = stats.persistence
            bound = max(p.max_latency or 0, p.oldest_pending_age or 0)
            cutoff = engine.clock.now() // 3
            delete_report = engine.delete_range(0, cutoff)
            metrics[name] = {
                "bound": bound,
                "pending": p.pending,
                "tombstones": stats.amplification.tombstones_on_disk,
                "wa": stats.amplification.write_amplification,
                "sdel_io": delete_report.io.total_pages,
            }
            rows.append(
                [
                    name,
                    round(stats.amplification.write_amplification, 2),
                    p.pending,
                    bound,
                    stats.amplification.tombstones_on_disk,
                    delete_report.pages_dropped,
                    delete_report.io.total_pages,
                ]
            )
            engine.close()

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        ExperimentResult(
            exp_id="T3",
            title=f"Ablation of the delete-aware design elements (D_th={D_TH})",
            headers=[
                "variant",
                "write amp",
                "pending deletes",
                "worst exposure",
                "tombstones left",
                "sec-delete: free drops",
                "sec-delete: I/O pages",
            ],
            rows=rows,
            notes=(
                "Claim shape: removing TTL triggers loses the bound; removing "
                "delete-aware picking slows draining; disabling the bottom "
                "drop accumulates tombstones forever; dropping the weave "
                "makes secondary deletes pay real I/O."
            ),
        ),
        benchmark,
    )

    shape_check(metrics["full acheron"]["bound"] <= D_TH, "full acheron must meet D_th")
    shape_check(
        metrics["- ttl triggers"]["bound"] > D_TH,
        "without TTL triggers the bound should be lost",
    )
    shape_check(
        metrics["- delete-aware picking"]["bound"] <= D_TH,
        "TTL triggers alone must still enforce D_th",
    )
    shape_check(
        metrics["- bottom tombstone drop"]["tombstones"]
        >= metrics["plain baseline"]["tombstones"],
        "disabling the bottom drop should accumulate at least as many tombstones",
    )
    shape_check(
        metrics["full acheron"]["sdel_io"] < metrics["- kiwi weave (h=1)"]["sdel_io"],
        "the weave should make secondary deletes cheaper",
    )
