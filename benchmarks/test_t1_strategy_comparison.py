"""T1 -- Strategy comparison grid: the demo's side-by-side panel.

Every engine variant the demonstration can configure, run on one seeded
delete-heavy workload, with every evaluation metric in one table: write /
space amplification, lookup cost, delete persistence, compaction counts.
This is the at-a-glance artifact the audience saw when toggling engines.
"""

from repro.bench import (
    EXPERIMENT_SCALE,
    ExperimentResult,
    make_acheron,
    make_baseline,
    record_experiment,
    run_mixed_workload,
)
from repro.config import CompactionStyle
from repro.workload.spec import OpKind, WorkloadSpec

D_TH = 8_000


def _spec() -> WorkloadSpec:
    return WorkloadSpec(
        operations=18_000,
        preload=9_000,
        weights={
            OpKind.INSERT: 0.45,
            OpKind.UPDATE: 0.15,
            OpKind.POINT_DELETE: 0.20,
            OpKind.POINT_QUERY: 0.15,
            OpKind.EMPTY_QUERY: 0.03,
            OpKind.RANGE_QUERY: 0.02,
        },
        seed=0x71,
    )


ENGINES = [
    ("leveling", lambda: make_baseline()),
    ("tiering", lambda: make_baseline(policy=CompactionStyle.TIERING)),
    ("lazy-leveling", lambda: make_baseline(policy=CompactionStyle.LAZY_LEVELING)),
    ("fade-leveling", lambda: make_acheron(D_TH, pages_per_tile=1)),
    (
        "fade-tiering",
        lambda: make_acheron(D_TH, pages_per_tile=1, policy=CompactionStyle.TIERING),
    ),
    (
        "fade-lazy-leveling",
        lambda: make_acheron(
            D_TH, pages_per_tile=1, policy=CompactionStyle.LAZY_LEVELING
        ),
    ),
    ("acheron (fade+kiwi h=8)", lambda: make_acheron(D_TH, pages_per_tile=8)),
]


def test_t1_strategy_comparison(benchmark, shape_check):
    rows = []
    metrics = {}

    def run():
        spec = _spec()
        for name, factory in ENGINES:
            engine = factory()
            result, stats = run_mixed_workload(engine, spec)
            p = stats.persistence
            lookups = result.per_kind.get(OpKind.POINT_QUERY)
            bound = max(p.max_latency or 0, p.oldest_pending_age or 0)
            metrics[name] = {
                "wa": stats.amplification.write_amplification,
                "sa": stats.amplification.space_amplification,
                "bound": bound,
            }
            rows.append(
                [
                    name,
                    round(stats.amplification.write_amplification, 2),
                    round(stats.amplification.space_amplification, 3),
                    round(lookups.pages_read_per_op, 3) if lookups else None,
                    p.pending,
                    bound,
                    p.violations,
                    stats.compaction_count,
                    stats.amplification.tombstones_on_disk,
                ]
            )
            engine.close()

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        ExperimentResult(
            exp_id="T1",
            title=f"Strategy comparison, one workload (20% deletes, D_th={D_TH})",
            headers=[
                "engine",
                "write amp",
                "space amp",
                "pages/lookup",
                "pending deletes",
                "worst exposure",
                "violations",
                "compactions",
                "tombstones left",
            ],
            rows=rows,
            notes=(
                "Claim shape: tiering < leveling on write amp; the FADE "
                "variants bound delete exposure by D_th where both baselines "
                "are unbounded; space amp of FADE variants <= their baselines."
            ),
        ),
        benchmark,
    )

    shape_check(
        metrics["tiering"]["wa"] < metrics["leveling"]["wa"],
        "tiering should have lower write amp than leveling",
    )
    for fade_name in (
        "fade-leveling",
        "fade-tiering",
        "fade-lazy-leveling",
        "acheron (fade+kiwi h=8)",
    ):
        shape_check(
            metrics[fade_name]["bound"] <= D_TH,
            f"{fade_name} exposure exceeds D_th",
        )
    shape_check(metrics["leveling"]["bound"] > D_TH, "leveling baseline should exceed D_th")
    shape_check(metrics["tiering"]["bound"] > D_TH, "tiering baseline should exceed D_th")
    shape_check(
        metrics["fade-leveling"]["sa"] <= metrics["leveling"]["sa"] + 1e-9,
        "fade-leveling space amp should not exceed leveling's",
    )
    shape_check(
        metrics["tiering"]["wa"] <= metrics["lazy-leveling"]["wa"] * 1.05
        and metrics["lazy-leveling"]["wa"] <= metrics["leveling"]["wa"] * 1.05,
        "lazy leveling write amp should sit between tiering and leveling",
    )
