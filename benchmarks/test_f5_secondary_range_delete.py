"""F5 -- Secondary range delete: KiWi page drops vs full-tree rewrite.

The second headline claim: deleting on a non-sort attribute (e.g. "purge
everything older than T") classically requires reading and rewriting the
whole tree; the key-weaving layout turns most of it into free page drops.
Both engines delete the same fraction of the same dataset; the figure
reports device traffic and modeled time, plus the read-path state after
the delete (the data must be equally gone either way).
"""

from repro.bench import EXPERIMENT_SCALE, ExperimentResult, make_acheron, make_baseline, record_experiment

ENTRIES = 40_000
DELETE_FRACTION = 3  # delete the oldest 1/3


def _load(engine):
    for i in range(ENTRIES):
        engine.put((i * 48_271) % ENTRIES, f"v{i}")
    engine.flush()


def test_f5_secondary_range_delete(benchmark, shape_check):
    rows = []
    io = {}

    def run():
        for name, factory, method in [
            ("kiwi h=16", lambda: make_acheron(10**6, pages_per_tile=16), "kiwi"),
            ("classic h=1 (kiwi path)", lambda: make_acheron(10**6, pages_per_tile=1), "kiwi"),
            ("full rewrite", make_baseline, "full_rewrite"),
        ]:
            engine = factory()
            _load(engine)
            cutoff = engine.clock.now() // DELETE_FRACTION
            report = engine.delete_range(0, cutoff, method=method)
            io[name] = report.io.total_pages
            survivors = sum(1 for _ in engine.scan(0, ENTRIES))
            rows.append(
                [
                    name,
                    report.entries_deleted,
                    report.pages_dropped,
                    report.pages_rewritten,
                    report.io.pages_read,
                    report.io.pages_written,
                    round(report.io.modeled_us / 1000.0, 2),
                    survivors,
                ]
            )
            engine.close()
        ratio = io["full rewrite"] / max(1, io["kiwi h=16"])
        rows.append(
            ["I/O reduction (rewrite / kiwi h=16)", None, None, None, None, None, round(ratio, 1), None]
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        ExperimentResult(
            exp_id="F5",
            title=f"Secondary range delete of the oldest 1/{DELETE_FRACTION} of {ENTRIES} entries",
            headers=[
                "method",
                "entries deleted",
                "pages dropped free",
                "pages rewritten",
                "pages read",
                "pages written",
                "modeled ms",
                "survivors",
            ],
            rows=rows,
            notes=(
                "Claim shape: the woven layout deletes without a full tree "
                "merge -- orders of magnitude less device traffic than the "
                "rewrite, with identical logical results."
            ),
        ),
        benchmark,
    )

    shape_check(
        io["kiwi h=16"] * 10 <= io["full rewrite"],
        f"kiwi ({io.get('kiwi h=16')}) should be >=10x cheaper than rewrite ({io.get('full rewrite')})",
    )
    shape_check(
        io["kiwi h=16"] < io["classic h=1 (kiwi path)"],
        "the weave should beat the classic layout on the same code path",
    )
