"""M1 (microbenchmark) -- raw operation latency of the Python engine.

Not a paper experiment: the reconstructed evaluation (F1-F9, T1-T3, A1)
is stated in device I/O counts, which are interpreter-independent.  This
module is the honest wall-clock companion -- what the pure-Python engine
itself costs per operation on this machine -- using pytest-benchmark the
conventional way (many rounds, statistics) so regressions in the
*implementation* are visible even when the I/O model is unchanged.
"""

import numpy as np

from repro.bench import make_acheron, make_baseline

PRELOADED = 20_000


def _preloaded(factory):
    engine = factory()
    for k in range(PRELOADED):
        engine.put((k * 48_271) % PRELOADED, k)
    return engine


def test_m1_put_baseline(benchmark):
    engine = make_baseline()
    counter = iter(range(10**9))

    def put_one():
        engine.put(next(counter), "value")

    benchmark(put_one)
    engine.close()


def test_m1_put_acheron(benchmark):
    engine = make_acheron(20_000, pages_per_tile=8, kiwi_page_filters=True)
    counter = iter(range(10**9))

    def put_one():
        engine.put(next(counter), "value")

    benchmark(put_one)
    engine.close()


def test_m1_get_hit_baseline(benchmark):
    engine = _preloaded(make_baseline)
    rng = np.random.default_rng(1)
    keys = rng.integers(0, PRELOADED, size=100_000)
    it = iter(keys.tolist())

    def get_one():
        engine.get(next(it))

    benchmark(get_one)
    engine.close()


def test_m1_get_miss_baseline(benchmark):
    engine = _preloaded(make_baseline)
    rng = np.random.default_rng(2)
    keys = (rng.integers(0, PRELOADED, size=100_000) + PRELOADED * 10).tolist()
    it = iter(keys)

    def get_one():
        engine.get(next(it))

    benchmark(get_one)
    engine.close()


def test_m1_short_scan_baseline(benchmark):
    engine = _preloaded(make_baseline)
    rng = np.random.default_rng(3)
    starts = iter(rng.integers(0, PRELOADED - 100, size=100_000).tolist())

    def scan_100():
        lo = next(starts)
        for _ in engine.scan(lo, lo + 100):
            pass

    benchmark(scan_100)
    engine.close()


def test_m1_delete_acheron(benchmark):
    engine = make_acheron(50_000, pages_per_tile=1)
    for k in range(PRELOADED):
        engine.put(k, k)
    counter = iter(range(10**9))

    def delete_one():
        engine.delete(next(counter) % PRELOADED)

    benchmark(delete_one)
    engine.close()
