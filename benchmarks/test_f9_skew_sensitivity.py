"""F9 (extension) -- key-popularity skew and the delete lifecycle.

Under a skewed (Zipfian) workload hot keys are constantly overwritten, so
many tombstones are *superseded* -- the delete becomes moot before FADE
ever has to act -- while under uniform traffic most tombstones must be
physically persisted.  This experiment runs the same mix under uniform,
Zipfian, and hotspot popularity and shows how the lifecycle split, the
exposure, and FADE's costs shift -- the demo's "try a skewed workload"
panel.
"""

from repro.bench import (
    ExperimentResult,
    make_acheron,
    make_baseline,
    record_experiment,
    run_mixed_workload,
)
from repro.workload.spec import OpKind, WorkloadSpec

DISTRIBUTIONS = ["uniform", "zipfian", "hotspot"]
D_TH = 8_000


def _spec(distribution: str) -> WorkloadSpec:
    return WorkloadSpec(
        operations=16_000,
        preload=8_000,
        weights={
            OpKind.INSERT: 0.35,
            OpKind.UPDATE: 0.30,
            OpKind.POINT_DELETE: 0.20,
            OpKind.POINT_QUERY: 0.15,
        },
        distribution=distribution,
        reinsert_fraction=0.4,
        seed=0xF9,
    )


def test_f9_skew_sensitivity(benchmark, shape_check):
    rows = []
    superseded_fraction = {}

    def run():
        for distribution in DISTRIBUTIONS:
            spec = _spec(distribution)
            base = make_baseline()
            ach = make_acheron(D_TH, pages_per_tile=1)
            _, base_stats = run_mixed_workload(base, spec)
            _, ach_stats = run_mixed_workload(ach, spec)
            p = ach_stats.persistence
            resolved = p.persisted + p.superseded
            superseded_fraction[distribution] = (
                p.superseded / resolved if resolved else 0.0
            )
            base_p = base_stats.persistence
            rows.append(
                [
                    distribution,
                    p.registered,
                    p.persisted,
                    p.superseded,
                    round(superseded_fraction[distribution], 3),
                    max(p.max_latency or 0, p.oldest_pending_age or 0),
                    max(base_p.max_latency or 0, base_p.oldest_pending_age or 0),
                    round(ach_stats.amplification.write_amplification, 2),
                    round(base_stats.amplification.write_amplification, 2),
                ]
            )
            base.close()
            ach.close()

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        ExperimentResult(
            exp_id="F9",
            title=f"Key-popularity skew vs the delete lifecycle (D_th={D_TH})",
            headers=[
                "distribution",
                "deletes",
                "persisted",
                "superseded",
                "superseded frac",
                "acheron worst exposure",
                "baseline worst exposure",
                "acheron WA",
                "baseline WA",
            ],
            rows=rows,
            notes=(
                "Claim shape: key churn (40% of inserts resurrect deleted "
                "keys) splits the lifecycle between persistence and "
                "supersession; the D_th bound holds under every "
                "distribution; skew dedups in the buffer and lowers the "
                "baseline's write amplification."
            ),
        ),
        benchmark,
    )

    for distribution in DISTRIBUTIONS:
        shape_check(
            superseded_fraction[distribution] > 0.0,
            f"{distribution}: key churn should supersede some tombstones",
        )
    for row in rows:
        shape_check(row[5] <= D_TH, f"{row[0]}: acheron exposure {row[5]} exceeds D_th")
    by_dist = {row[0]: row for row in rows}
    shape_check(
        by_dist["zipfian"][8] < by_dist["uniform"][8],
        "skewed updates dedup in the buffer: zipfian baseline WA < uniform",
    )
