"""F2 -- Space amplification vs delete fraction.

Lethe's abstract claims 2.1-9.8x lower space amplification: tombstones and
the dead versions they pin inflate the baseline's footprint, while FADE
purges both within ``D_th``.  Space amplification is measured as
bytes-on-disk / live-bytes at the end of each run (1.0 = no waste); the
comparison column reports baseline *overhead* (amp - 1) relative to FADE's,
which is the quantity the paper's multiplier describes.
"""

from repro.bench import (
    ExperimentResult,
    make_acheron,
    make_baseline,
    record_experiment,
    run_mixed_workload,
)
from repro.workload.spec import OpKind, WorkloadSpec

DELETE_FRACTIONS = [0.05, 0.15, 0.25, 0.40]


def _spec(delete_fraction: float) -> WorkloadSpec:
    return WorkloadSpec(
        operations=18_000,
        preload=9_000,
        weights={
            OpKind.INSERT: 0.55,
            OpKind.UPDATE: 0.25,
            OpKind.POINT_QUERY: 0.20,
        },
        seed=0xF2,
    ).with_delete_fraction(delete_fraction)


def test_f2_space_amplification(benchmark, shape_check):
    rows = []
    overhead_ratios = []

    def run():
        for fraction in DELETE_FRACTIONS:
            spec = _spec(fraction)
            base = make_baseline()
            ach = make_acheron(8_000, pages_per_tile=1)
            _, base_stats = run_mixed_workload(base, spec)
            _, ach_stats = run_mixed_workload(ach, spec)
            base_amp = base_stats.amplification.space_amplification
            ach_amp = ach_stats.amplification.space_amplification
            base_overhead = base_amp - 1.0
            ach_overhead = ach_amp - 1.0
            ratio = base_overhead / ach_overhead if ach_overhead > 1e-9 else float("inf")
            overhead_ratios.append((fraction, ratio, base_amp, ach_amp))
            rows.append(
                [
                    f"{fraction:.0%}",
                    round(base_amp, 4),
                    round(ach_amp, 4),
                    base_stats.amplification.tombstones_on_disk,
                    ach_stats.amplification.tombstones_on_disk,
                    round(ratio, 2) if ratio != float("inf") else "inf",
                ]
            )
            base.close()
            ach.close()

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        ExperimentResult(
            exp_id="F2",
            title="Space amplification vs delete fraction (D_th=8k)",
            headers=[
                "deletes",
                "baseline space-amp",
                "acheron space-amp",
                "baseline tombstones",
                "acheron tombstones",
                "overhead ratio (base/ach)",
            ],
            rows=rows,
            notes=(
                "Claim shape: FADE's space overhead is a small fraction of the "
                "baseline's (paper band: 2.1-9.8x lower), and the gap widens "
                "with the delete fraction."
            ),
        ),
        benchmark,
    )

    for fraction, ratio, base_amp, ach_amp in overhead_ratios:
        shape_check(
            ach_amp <= base_amp + 1e-9,
            f"at {fraction:.0%} deletes acheron ({ach_amp:.3f}) not <= baseline ({base_amp:.3f})",
        )
    meaningful = [r for f, r, *_ in overhead_ratios if f >= 0.15]
    shape_check(
        all(r >= 1.5 for r in meaningful),
        f"expected >=1.5x overhead reduction at >=15% deletes, got {meaningful}",
    )
