"""F4 -- Write amplification: the price of the persistence guarantee.

FADE's expiry compactions are extra device writes the baseline never pays.
Lethe's abstract bounds the overhead at +4-25% for its configurations;
the overhead shrinks as ``D_th`` grows (looser deadlines piggyback on
compactions that would happen anyway).  This figure sweeps ``D_th`` on one
delete-heavy workload and reports the overhead trajectory.
"""

from repro.bench import (
    ExperimentResult,
    make_acheron,
    make_baseline,
    record_experiment,
    run_mixed_workload,
)
from repro.workload.spec import OpKind, WorkloadSpec

D_TH_SWEEP = [2_000, 8_000, 32_000, 128_000]


def _spec() -> WorkloadSpec:
    return WorkloadSpec(
        operations=20_000,
        preload=10_000,
        weights={
            OpKind.INSERT: 0.55,
            OpKind.UPDATE: 0.20,
            OpKind.POINT_DELETE: 0.15,
            OpKind.POINT_QUERY: 0.10,
        },
        seed=0xF4,
    )


def test_f4_write_amplification(benchmark, shape_check):
    rows = []
    overheads = []

    def run():
        spec = _spec()
        base = make_baseline()
        _, base_stats = run_mixed_workload(base, spec)
        base_wa = base_stats.amplification.write_amplification
        rows.append(
            [
                "baseline",
                None,
                round(base_wa, 3),
                "0.0%",
                base_stats.compaction_count,
                None,
                None,
            ]
        )
        base.close()
        for d_th in D_TH_SWEEP:
            engine = make_acheron(d_th, pages_per_tile=1)
            _, stats = run_mixed_workload(engine, spec)
            wa = stats.amplification.write_amplification
            overhead = (wa / base_wa - 1.0) * 100.0
            overheads.append((d_th, overhead))
            fade = engine.tree.fade
            rows.append(
                [
                    "fade",
                    d_th,
                    round(wa, 3),
                    f"{overhead:+.1f}%",
                    stats.compaction_count,
                    fade.expiry_compactions,
                    fade.purge_compactions,
                ]
            )
            engine.close()

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        ExperimentResult(
            exp_id="F4",
            title="Write amplification vs D_th (15% deletes)",
            headers=[
                "engine",
                "D_th",
                "write amp",
                "overhead vs baseline",
                "compactions",
                "expiry compactions",
                "bottom purges",
            ],
            rows=rows,
            notes=(
                "Claim shape: FADE costs extra write amplification that "
                "shrinks as D_th grows (paper band for production scale: "
                "+4-25%; tighter deadlines at this miniature scale cost more)."
            ),
        ),
        benchmark,
    )

    shape_check(
        overheads[0][1] >= overheads[-1][1],
        f"overhead should not grow with D_th: {overheads}",
    )
    shape_check(
        overheads[-1][1] <= 60.0,
        f"loosest D_th overhead should be modest, got {overheads[-1][1]:+.1f}%",
    )
