"""F3 -- Read performance: point lookups on a tombstone-laden tree.

Lethe's abstract claims 1.17-1.4x higher read throughput: after a
delete-heavy history the baseline tree is bloated with tombstones and the
dead versions they pin -- deeper levels, more files, more Bloom
false-positive traffic -- while FADE has purged them.  Both engines then
serve an identical read-only phase (point lookups on live keys, lookups of
deleted keys, and lookups of never-existing keys); the figure reports
device pages per lookup and modeled throughput.

FADE-only configuration (``h = 1``): the weave's point-lookup penalty is
measured separately in F7.
"""

from repro.bench import (
    EXPERIMENT_SCALE,
    ExperimentResult,
    make_acheron,
    make_baseline,
    record_experiment,
)
from repro.workload.generator import KEY_STRIDE, WorkloadGenerator
from repro.workload.runner import run_workload
from repro.workload.spec import OpKind, WorkloadSpec

READS = 4_000


def _history() -> WorkloadSpec:
    return WorkloadSpec(
        operations=24_000,
        preload=12_000,
        weights={
            OpKind.INSERT: 0.50,
            OpKind.UPDATE: 0.15,
            OpKind.POINT_DELETE: 0.35,
        },
        seed=0xF3,
    )


def _build(engine):
    spec = _history()
    generator = WorkloadGenerator(spec)
    run_workload(engine, generator.operations())
    live_slots = generator._live  # noqa: SLF001 - bench introspection
    return [slot * KEY_STRIDE for slot in live_slots]


def _measure_reads(engine, live_keys):
    import numpy as np

    rng = np.random.default_rng(0xF3)
    disk = engine.disk.stats
    before_pages, before_us = disk.pages_read, disk.modeled_us
    hits = 0
    for i in range(READS):
        mode = i % 4
        if mode < 2:  # live key
            key = live_keys[int(rng.integers(0, len(live_keys)))]
        elif mode == 2:  # deleted/missing on-stride key
            key = int(rng.integers(0, max(live_keys))) // KEY_STRIDE * KEY_STRIDE
        else:  # never-existed key
            key = int(rng.integers(0, max(live_keys))) | 1
        if engine.get(key) is not None:
            hits += 1
    pages = disk.pages_read - before_pages
    modeled_us = disk.modeled_us - before_us
    return {
        "hits": hits,
        "pages_per_lookup": pages / READS,
        "us_per_lookup": modeled_us / READS,
        "throughput": READS / (modeled_us / 1e6) if modeled_us else float("inf"),
    }


def test_f3_read_performance(benchmark, shape_check):
    rows = []
    outcome = {}

    def run():
        for name, factory in [
            ("baseline", make_baseline),
            ("acheron (FADE)", lambda: make_acheron(8_000, pages_per_tile=1)),
        ]:
            engine = factory()
            live_keys = _build(engine)
            shape = engine.stats()
            reads = _measure_reads(engine, live_keys)
            outcome[name] = reads
            rows.append(
                [
                    name,
                    shape.amplification.entries_on_disk,
                    shape.amplification.tombstones_on_disk,
                    reads["hits"],
                    round(reads["pages_per_lookup"], 3),
                    round(reads["us_per_lookup"], 1),
                    round(reads["throughput"], 0),
                ]
            )
            engine.close()
        ratio = outcome["acheron (FADE)"]["throughput"] / outcome["baseline"]["throughput"]
        rows.append(["speedup (acheron/baseline)", None, None, None, None, None, round(ratio, 3)])

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        ExperimentResult(
            exp_id="F3",
            title=f"Point-lookup cost after a delete-heavy history ({READS} lookups)",
            headers=[
                "engine",
                "entries on disk",
                "tombstones on disk",
                "hits",
                "pages/lookup",
                "modeled us/lookup",
                "modeled lookups/s",
            ],
            rows=rows,
            notes=(
                "Claim shape: the purged (FADE) tree serves lookups with fewer "
                "device pages -> higher modeled throughput (paper band: "
                "1.17-1.4x)."
            ),
        ),
        benchmark,
    )

    ratio = outcome["acheron (FADE)"]["throughput"] / outcome["baseline"]["throughput"]
    shape_check(ratio >= 1.0, f"expected FADE read speedup >= 1.0x, got {ratio:.3f}")
    shape_check(ratio <= 3.0, f"speedup {ratio:.3f} implausibly large; check the setup")
