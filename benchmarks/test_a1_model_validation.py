"""A1 (extension) -- analytical model vs measured engine.

The design-space papers this system builds on lean on closed-form cost
models to navigate tuning; :mod:`repro.analysis` implements those models
for this engine.  This experiment is the honesty check: for each policy,
predict tree depth, write amplification, and lookup cost, then measure
them on a real run and report the ratio.  The shape requirement is that
every prediction is directionally right and within first-order tolerance
(2.5x), which is what makes the tuning advisor trustworthy.
"""

from repro.analysis.model import CostModel
from repro.bench import EXPERIMENT_SCALE, ExperimentResult, record_experiment
from repro.config import CompactionStyle, baseline_config
from repro.core.engine import AcheronEngine
from repro.metrics.amplification import write_amplification

ENTRIES = 30_000
LOOKUPS = 2_000


def _measure(policy: CompactionStyle) -> dict:
    config = baseline_config(policy=policy, trivial_moves=False, **EXPERIMENT_SCALE)
    engine = AcheronEngine(config)
    for i in range(ENTRIES):
        engine.put((i * 2654435761) % ENTRIES, i)
    engine.flush()

    import numpy as np

    rng = np.random.default_rng(0xA1)
    stats = engine.disk.stats
    before = stats.pages_read
    for _ in range(LOOKUPS):
        engine.get(int(rng.integers(0, ENTRIES)))
    pages_per_hit = (stats.pages_read - before) / LOOKUPS

    measured = {
        "levels": engine.tree.deepest_nonempty_level(),
        "wa": write_amplification(engine.tree),
        "lookup": pages_per_hit,
    }
    engine.close()
    return measured


def test_a1_model_validation(benchmark, shape_check):
    rows = []
    ratios = []

    def run():
        for policy in (
            CompactionStyle.LEVELING,
            CompactionStyle.LAZY_LEVELING,
            CompactionStyle.TIERING,
        ):
            config = baseline_config(policy=policy, trivial_moves=False, **EXPERIMENT_SCALE)
            model = CostModel(config)
            predicted = {
                "levels": model.levels(ENTRIES),
                "wa": model.write_amplification(ENTRIES),
                "lookup": model.point_lookup_pages(ENTRIES, exists=True),
            }
            measured = _measure(policy)
            for metric in ("levels", "wa", "lookup"):
                ratio = measured[metric] / predicted[metric] if predicted[metric] else 0.0
                ratios.append((policy.value, metric, ratio))
                rows.append(
                    [
                        policy.value,
                        metric,
                        round(predicted[metric], 3),
                        round(measured[metric], 3),
                        round(ratio, 3),
                    ]
                )

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        ExperimentResult(
            exp_id="A1",
            title=f"Cost model vs measurement ({ENTRIES} entries, {LOOKUPS} lookups)",
            headers=["policy", "metric", "predicted", "measured", "measured/predicted"],
            rows=rows,
            notes=(
                "Shape: every metric within 2.5x of its first-order "
                "prediction; orderings across policies exact."
            ),
        ),
        benchmark,
    )

    for policy, metric, ratio in ratios:
        shape_check(
            1 / 2.5 <= ratio <= 2.5,
            f"{policy}/{metric}: measured/predicted ratio {ratio:.2f} out of tolerance",
        )
