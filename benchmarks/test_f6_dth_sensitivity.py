"""F6 -- D_th sensitivity: the knob the demo lets the audience turn.

One workload, one engine design, ``D_th`` swept across two orders of
magnitude.  Shows the whole tradeoff surface at once: tighter deadlines
mean lower persistence latency and less tombstone residue but more expiry
compactions and write amplification.
"""

from repro.bench import (
    ExperimentResult,
    make_acheron,
    record_experiment,
    run_mixed_workload,
)
from repro.workload.spec import OpKind, WorkloadSpec

D_TH_SWEEP = [1_000, 4_000, 16_000, 64_000]


def _spec() -> WorkloadSpec:
    return WorkloadSpec(
        operations=18_000,
        preload=9_000,
        weights={
            OpKind.INSERT: 0.50,
            OpKind.UPDATE: 0.15,
            OpKind.POINT_DELETE: 0.20,
            OpKind.POINT_QUERY: 0.15,
        },
        seed=0xF6,
    )


def test_f6_dth_sensitivity(benchmark, shape_check):
    rows = []
    series = []

    def run():
        spec = _spec()
        for d_th in D_TH_SWEEP:
            engine = make_acheron(d_th, pages_per_tile=1)
            _, stats = run_mixed_workload(engine, spec)
            p = stats.persistence
            wa = stats.amplification.write_amplification
            fade = engine.tree.fade
            bound = max(p.max_latency or 0, p.oldest_pending_age or 0)
            series.append((d_th, bound, wa, fade.expiry_compactions + fade.purge_compactions))
            rows.append(
                [
                    d_th,
                    p.max_latency,
                    p.oldest_pending_age,
                    p.violations,
                    round(wa, 3),
                    stats.amplification.tombstones_on_disk,
                    fade.expiry_compactions,
                    fade.purge_compactions,
                ]
            )
            engine.close()

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        ExperimentResult(
            exp_id="F6",
            title="D_th sensitivity (20% deletes)",
            headers=[
                "D_th",
                "max latency",
                "oldest pending",
                "violations",
                "write amp",
                "tombstones left",
                "expiry compactions",
                "bottom purges",
            ],
            rows=rows,
            notes=(
                "Claim shape: worst-case latency tracks D_th (always <= it, "
                "zero violations); write amplification and expiry-compaction "
                "count fall as D_th loosens."
            ),
        ),
        benchmark,
    )

    for d_th, bound, _, _ in series:
        shape_check(bound <= d_th, f"D_th={d_th}: worst case {bound} exceeds the bound")
    shape_check(
        series[0][2] >= series[-1][2],
        f"write amp should not increase with looser D_th: {[(d, round(w,2)) for d, _, w, _ in series]}",
    )
    shape_check(
        series[0][3] >= series[-1][3],
        "expiry compaction count should fall as D_th loosens",
    )
