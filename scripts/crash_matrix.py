#!/usr/bin/env python
"""Run the exhaustive crash matrix from the command line.

Every registered storage fault point is crossed with every engine
operation ({ingest, flush, compaction, range_delete, restart}); each
combination crashes (or corrupts, or starves) an isolated engine at that
exact point, reopens the store from disk, and verifies the durability
contract: zero acknowledged-write loss, no resurrection of deleted keys,
tombstone ages and FADE deadlines preserved, doctor-clean structure.

    PYTHONPATH=src python scripts/crash_matrix.py            # full matrix
    PYTHONPATH=src python scripts/crash_matrix.py --quick    # CI subset
    PYTHONPATH=src python scripts/crash_matrix.py --seed 7 --operations ingest,flush

Exit status is 0 only when every combination passes.  Failing combos keep
their store directory on disk (the path is printed) so a failure can be
inspected and replayed deterministically with the same seed.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.testing.crashmatrix import OPERATIONS, ComboResult, run_crash_matrix


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="skip the enospc/fsync_drop twins (CI configuration)")
    parser.add_argument("--seed", type=int, default=0,
                        help="matrix seed (each combo derives its own from it)")
    parser.add_argument("--operations", default=None,
                        help=f"comma-separated subset of {','.join(OPERATIONS)}")
    parser.add_argument("--verbose", action="store_true",
                        help="print every combo as it completes")
    args = parser.parse_args(argv)

    operations: tuple[str, ...] | None = None
    if args.operations:
        operations = tuple(op.strip() for op in args.operations.split(","))
        unknown = [op for op in operations if op not in OPERATIONS]
        if unknown:
            parser.error(f"unknown operations: {unknown} (choose from {OPERATIONS})")

    started = time.monotonic()

    def progress(done: int, total: int, result: ComboResult) -> None:
        if args.verbose:
            status = "ok" if result.ok else "FAIL"
            fired = "fired" if result.triggered else "quiet"
            print(f"[{done:>3}/{total}] {result.label():<55} {fired:<6} {status}")
        elif done % 25 == 0 or done == total:
            print(f"  ... {done}/{total} combos", flush=True)

    matrix = run_crash_matrix(
        seed=args.seed, quick=args.quick, operations=operations, progress=progress
    )
    elapsed = time.monotonic() - started
    print(matrix.summary())
    print(f"  ({elapsed:.1f}s)")
    return 0 if matrix.passed else 1


if __name__ == "__main__":
    sys.exit(main())
