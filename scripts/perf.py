#!/usr/bin/env python
"""Run the wall-clock performance suite and archive BENCH_<n>.json.

Usage::

    PYTHONPATH=src python scripts/perf.py           # full suite (~50k ops/exp)
    PYTHONPATH=src python scripts/perf.py --quick   # CI smoke (~6k ops/exp)
    PYTHONPATH=src python scripts/perf.py --ops 100000 --workers 3
    PYTHONPATH=src python scripts/perf.py --out /tmp/bench.json

Each experiment times the ingest hot loop twice in the same process --
once through the pre-optimization cost model, once through the optimized
batched path -- and asserts the two arms left the engine in an identical
state (same simulated I/O, flushes, compactions, occupancy).  See
``repro/bench/perfsuite.py`` and DESIGN.md ("Performance model &
benchmarking").
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.perfsuite import (  # noqa: E402
    FULL_INGEST_OPS,
    check_adversarial,
    check_memory,
    check_policy,
    check_read_regression,
    check_server,
    render,
    run_suite,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small op counts for CI smoke runs (result is still archived)",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=FULL_INGEST_OPS,
        help=f"ingest operations per experiment (default {FULL_INGEST_OPS})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: one per experiment; 0 = run serially)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default: next unused BENCH_<n>.json at the repo root)",
    )
    parser.add_argument(
        "--check-reads",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="archived BENCH_<n>.json to guard speedups against; exits 1 if a "
        "get/scan/mixed read speedup or the serial ingest speedup regresses "
        "past the tolerance",
    )
    parser.add_argument(
        "--read-tolerance",
        type=float,
        default=0.2,
        help="allowed fractional speedup drop for --check-reads (default 0.2)",
    )
    parser.add_argument(
        "--check-adversarial",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="archived BENCH_<n>.json to hold the adversarial phase's "
        "defended-arm metrics against; exits 1 if a defense envelope "
        "(FPR ceiling, residency floor, storm share, tombstone age) slips "
        "past the tolerance or defenses_held is false",
    )
    parser.add_argument(
        "--check-memory",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="archived BENCH_<n>.json to hold the memory_skew phase against; "
        "exits 1 if the adaptive arm no longer beats the static arm in "
        "modeled I/O and p99 lookup cost, or the win shrinks past the "
        "tolerance relative to the archive",
    )
    parser.add_argument(
        "--check-policy",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="archived BENCH_<n>.json to hold the policy_drift phase against; "
        "exits 1 if the tuned arm no longer beats every static policy in "
        "modeled I/O, leaves the per-third slack, stops switching, or the "
        "win shrinks past the tolerance relative to the archive",
    )
    parser.add_argument(
        "--check-server",
        action="store_true",
        help="hold the served phase to the wire-protocol contract; exits 1 "
        "if any client arm's contents or modeled device time diverge from "
        "the embedded replay, or the storm arm fails to shed (or sheds an "
        "acknowledged write).  Takes no baseline: every guarded property "
        "is an exact invariant",
    )
    args = parser.parse_args(argv)
    if args.ops < 1:
        parser.error(f"--ops must be >= 1, got {args.ops}")
    if args.workers is not None and args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    if args.out is not None and not args.out.parent.is_dir():
        parser.error(f"--out directory does not exist: {args.out.parent}")
    if args.check_reads is not None and not args.check_reads.is_file():
        parser.error(f"--check-reads baseline does not exist: {args.check_reads}")
    if args.check_adversarial is not None and not args.check_adversarial.is_file():
        parser.error(
            f"--check-adversarial baseline does not exist: {args.check_adversarial}"
        )
    if args.check_memory is not None and not args.check_memory.is_file():
        parser.error(f"--check-memory baseline does not exist: {args.check_memory}")
    if args.check_policy is not None and not args.check_policy.is_file():
        parser.error(f"--check-policy baseline does not exist: {args.check_policy}")
    if not 0.0 <= args.read_tolerance < 1.0:
        parser.error(f"--read-tolerance must be in [0, 1), got {args.read_tolerance}")

    payload = run_suite(
        ingest_ops=args.ops, quick=args.quick, workers=args.workers, out=args.out
    )
    print(render(payload))
    if args.check_reads is not None:
        baseline = json.loads(args.check_reads.read_text())
        failures = check_read_regression(
            payload, baseline, tolerance=args.read_tolerance
        )
        if failures:
            print(f"read regression vs {args.check_reads}:")
            for failure in failures:
                print(f"  FAIL {failure}")
            return 1
        print(f"read speedups within {args.read_tolerance:.0%} of {args.check_reads}")
    if args.check_adversarial is not None:
        baseline = json.loads(args.check_adversarial.read_text())
        failures = check_adversarial(
            payload, baseline, tolerance=args.read_tolerance
        )
        if failures:
            print(f"adversarial envelope vs {args.check_adversarial}:")
            for failure in failures:
                print(f"  FAIL {failure}")
            return 1
        print(
            f"adversarial defenses within {args.read_tolerance:.0%} of "
            f"{args.check_adversarial}"
        )
    if args.check_memory is not None:
        baseline = json.loads(args.check_memory.read_text())
        failures = check_memory(payload, baseline, tolerance=args.read_tolerance)
        if failures:
            print(f"memory governor envelope vs {args.check_memory}:")
            for failure in failures:
                print(f"  FAIL {failure}")
            return 1
        print(
            f"memory governor win holds within {args.read_tolerance:.0%} of "
            f"{args.check_memory}"
        )
    if args.check_policy is not None:
        baseline = json.loads(args.check_policy.read_text())
        failures = check_policy(payload, baseline, tolerance=args.read_tolerance)
        if failures:
            print(f"policy tuner envelope vs {args.check_policy}:")
            for failure in failures:
                print(f"  FAIL {failure}")
            return 1
        print(
            f"policy tuner win holds within {args.read_tolerance:.0%} of "
            f"{args.check_policy}"
        )
    if args.check_server:
        failures = check_server(payload)
        if failures:
            print("served-engine contract:")
            for failure in failures:
                print(f"  FAIL {failure}")
            return 1
        print(
            "served-engine contract holds: digests and modeled device time "
            "match embedded; storm shed without losing acked writes"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
