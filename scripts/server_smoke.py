#!/usr/bin/env python
"""CI smoke for the served engine: a real server process, real clients.

Where ``tests/test_server.py`` runs the server in-process (threads in
the pytest interpreter), this script exercises the full deployment
shape CI cares about:

1. spawn ``python -m repro.cli serve`` as a **subprocess** on an
   ephemeral port and wait for its readiness line;
2. replay a seeded mixed workload over the wire with N pipelined
   clients (default 8) via the same ``run_workload(connect=...)``
   machinery ``repro workload --connect`` uses;
3. replay the identical stream against an **embedded** engine and
   assert the two final contents digests are equal -- the served path
   must not lose, duplicate, or reorder a single write;
4. drive one actual ``repro workload --connect`` CLI invocation (an
   adversary stream, so attack replay over the wire is covered too);
5. tear the server down cleanly (SIGTERM, then SIGKILL past the
   timeout) and fail loudly if it did not exit.

Usage::

    PYTHONPATH=src python scripts/server_smoke.py            # defaults
    PYTHONPATH=src python scripts/server_smoke.py --clients 8 --ops 4000
"""

from __future__ import annotations

import argparse
import hashlib
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.config import acheron_config  # noqa: E402
from repro.server import EngineClient  # noqa: E402
from repro.shard import ShardedEngine  # noqa: E402
from repro.workload.generator import generate_operations  # noqa: E402
from repro.workload.runner import run_workload  # noqa: E402
from repro.workload.spec import OpKind, WorkloadSpec  # noqa: E402

READY_PATTERN = re.compile(r"^serving .* at (\S+:\d+) \(\d+ shard\(s\)\)")


def build_stream(ops: int, seed: int):
    return generate_operations(
        WorkloadSpec(
            operations=ops,
            preload=ops // 2,
            seed=seed,
            weights={
                OpKind.INSERT: 0.40,
                OpKind.UPDATE: 0.22,
                OpKind.POINT_DELETE: 0.10,
                OpKind.POINT_QUERY: 0.15,
                OpKind.EMPTY_QUERY: 0.04,
                OpKind.RANGE_QUERY: 0.04,
                OpKind.SECONDARY_RANGE_DELETE: 0.05,
            },
        )
    )


def contents_digest(scannable, hi: int) -> str:
    digest = hashlib.sha256()
    for key, value in scannable.scan(0, hi):
        digest.update(repr((key, value)).encode())
    return digest.hexdigest()


def wait_for_ready(proc: subprocess.Popen, deadline: float) -> str:
    """Read the serve subprocess's stdout until the readiness line."""
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before becoming ready (rc={proc.poll()})"
            )
        sys.stdout.write(f"  [serve] {line}")
        match = READY_PATTERN.match(line.strip())
        if match:
            return match.group(1)
    raise SystemExit("server did not print its readiness line in time")


def shutdown(proc: subprocess.Popen, timeout: float) -> int:
    """SIGTERM -> wait -> SIGKILL.  Returns the exit code."""
    if proc.poll() is not None:
        return proc.returncode
    proc.send_signal(signal.SIGTERM)
    try:
        return proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        print(f"  server ignored SIGTERM for {timeout}s; killing", flush=True)
        proc.kill()
        proc.wait(timeout=10)
        return -9


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=4_000)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0xCAFE)
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="seconds to wait for readiness and again for clean teardown",
    )
    args = parser.parse_args(argv)

    stream = build_stream(args.ops, args.seed)
    key_space = 4 * (args.ops // 2 + args.ops) + 64

    # -- embedded reference arm ------------------------------------------
    config = acheron_config(memtable_entries=512, entries_per_page=32)
    embedded = ShardedEngine(
        config, shards=args.shards, key_space=(0, key_space)
    )
    run_workload(embedded, stream)
    expected = contents_digest(embedded, key_space)
    embedded.close()
    print(f"embedded replay: {args.ops} ops, digest {expected[:16]}")

    env = dict(os.environ, PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(Path(__file__).resolve().parents[1] / "src"),
                    env.get("PYTHONPATH")) if p
    )
    with tempfile.TemporaryDirectory(prefix="repro-server-smoke-") as scratch:
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                str(Path(scratch) / "store"),
                "--port",
                "0",
                "--shards",
                str(args.shards),
                "--key-space",
                str(key_space),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            address = wait_for_ready(
                proc, deadline=time.monotonic() + args.timeout
            )
            print(f"server ready at {address}")

            # -- served arm: same stream, N pipelined clients ------------
            result = run_workload(
                None, stream, connect=address, clients=args.clients
            )
            assert result.served is not None
            with EngineClient(address) as client:
                served_digest = contents_digest(client, key_space)
                report = client.stats()["server"]
            print(
                f"served replay: {result.operations} ops over "
                f"{args.clients} clients in {result.wall_seconds:.2f}s "
                f"(sheds {result.served['sheds_seen']}, "
                f"reconnects {result.served['reconnects']}, "
                f"server accepted {report['accepted']})"
            )
            if served_digest != expected:
                print(
                    f"FAIL digest mismatch: served {served_digest[:16]} != "
                    f"embedded {expected[:16]}",
                    file=sys.stderr,
                )
                return 1
            print(f"digest equivalence holds ({served_digest[:16]})")

            # -- the actual CLI, adversary stream over the wire ----------
            cli = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "workload",
                    "--connect",
                    address,
                    "--clients",
                    str(args.clients),
                    "--adversary",
                    "hot_shard_storm",
                    "--ops",
                    str(min(args.ops, 2_048)),
                    "--preload",
                    "1024",
                ],
                env=env,
                timeout=args.timeout * 4,
                capture_output=True,
                text=True,
            )
            if cli.returncode != 0:
                print(
                    "FAIL `repro workload --connect --adversary "
                    f"hot_shard_storm` exited {cli.returncode}:\n{cli.stdout}"
                    f"\n{cli.stderr}",
                    file=sys.stderr,
                )
                return 1
            print("CLI adversary replay over the wire: ok")
        finally:
            rc = shutdown(proc, args.timeout)
            print(f"server exited with {rc}")
    if rc != 0:
        print(f"FAIL server did not exit cleanly (rc={rc})", file=sys.stderr)
        return 1
    print("server smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
