"""Setup shim: the offline environment lacks the wheel package
required by PEP 660 editable installs, so this file keeps the legacy
``setup.py develop`` path working.  All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
